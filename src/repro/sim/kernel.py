"""Discrete-event simulation kernel.

This module provides the deterministic execution substrate for the whole
reproduction.  The 1988 paper ran on real Argus nodes; we instead run every
guardian, agent and network link inside a single simulated timeline so that
per-message overheads, wire latencies and handler compute times are explicit,
controllable model parameters (see DESIGN.md section 2).

The calendar is a **bucket calendar queue** (DESIGN.md section 13): a heap
of *distinct* pending timestamps plus a dict mapping each timestamp to its
bucket of entries.  Simulation workloads schedule overwhelmingly at small
deltas from *now* — network deliveries at ``now + latency``, RTO timers,
flush alarms, ``call_soon`` continuations — so timestamps repeat heavily
and the heap stays tiny (one entry per distinct time, not per event).
Each bucket holds two append-only FIFO lanes (urgent, normal) drained with
a cursor, which reproduces the previous global-heap ``(time, priority,
seq)`` ordering exactly: insertion order within a lane *is* seq order, and
the urgent lane is re-checked before every fire so urgent events always
run before normal events at the same timestamp.  Far-future timers need no
special overflow tier — a far timestamp is simply one more heap entry that
sits unexamined until the clock reaches it.

A lane is a flat ring of ``(head, payload)`` slot pairs, not a list of
entry objects:

* ``head is _EV``      — *payload* is an Event to fire;
* ``head`` is a pooled :class:`_Callback` record — a cancellable timer;
  *payload* is its argument tuple (the record itself only carries the
  function and a generation counter);
* otherwise ``head`` is a plain callable and *payload* its argument
  tuple — the common case, costing zero allocations beyond the argument
  tuple Python builds anyway.

Cancellable timers are pooled: consumed ``_Callback`` records go on a free
list and are reissued by the next ``call_at_cancellable``, so steady-state
timer traffic allocates nothing.  The generation counter on each record
lets holders (e.g. :class:`~repro.sim.alarm.Alarm`) cancel a pending timer
in O(1) by nulling its function slot — the drain loop skips dead records
at their slot — without being fooled by record reuse.

Simulated processes are Python generators that yield
:class:`~repro.sim.events.Event` objects to block; the machinery for that
lives in :mod:`repro.sim.process`.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable

__all__ = [
    "Environment",
    "EmptySchedule",
    "StopSimulation",
    "Infinity",
    "URGENT",
    "NORMAL",
]

#: Scheduling priority for events that must fire before ordinary events at
#: the same timestamp (e.g. process resumption after an interrupt).
URGENT = 0

#: Default scheduling priority.
NORMAL = 1

#: A time later than any other; used as the default run-until bound.
Infinity = float("inf")

#: Lane sentinel: the slot after an ``_EV`` head holds an Event to fire.
_EV = object()

#: Maximum number of drained bucket structures kept for reuse.
_BUCKET_POOL_LIMIT = 4096

# Bucket layout: [normal_lane, normal_cursor, urgent_lane_or_None,
# urgent_cursor].  Cursors index slots (they advance by 2 per entry).  The
# urgent lane is lazily allocated because most timestamps only ever see
# normal-priority entries (three list allocations per network message would
# be measurable; see benchmarks/perf).

# Filled in by repro.sim.events at import time so the run loop can inline
# the (hot, exact-class) Event/Timeout fire path without an import cycle.
_EVENT_CLASS: Any = None
_TIMEOUT_CLASS: Any = None


class _Callback:
    """A cancellable calendar timer record.

    Records are pooled (``Environment._cb_pool``) and reused; ``gen`` is
    bumped every time a record is consumed, so a holder that remembered
    ``(record, gen)`` can tell whether the record still belongs to it.
    ``fn is None`` marks a cancelled entry, skipped in O(1) at its slot.
    The argument tuple lives in the lane's payload slot, not here.
    """

    __slots__ = ("fn", "gen")

    def __init__(self, fn: Callable[..., None]) -> None:
        self.fn = fn
        self.gen = 0

    def __repr__(self) -> str:
        return "<_Callback %r gen=%d at 0x%x>" % (self.fn, self.gen, id(self))


class EmptySchedule(Exception):
    """Raised by :meth:`Environment.step` when no events remain."""


class StopSimulation(Exception):
    """Raised internally to stop :meth:`Environment.run` at a trigger event."""

    def __init__(self, value: Any) -> None:
        super().__init__(value)
        self.value = value


class Environment:
    """A simulation environment: clock plus event calendar.

    The environment is deliberately small; everything else (timeouts,
    processes, synchronization, networks, guardians) is built on
    :meth:`schedule` and :meth:`run`.
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        #: Heap of *distinct* pending timestamps; one entry per bucket.
        self._times: list = []
        #: time -> bucket; see the lane-layout comment at module top.
        self._buckets: dict = {}
        #: Free list of consumed _Callback records awaiting reuse.
        self._cb_pool: list = []
        #: Free list of drained bucket structures ([lane, 0, None, 0],
        #: lanes emptied) awaiting reuse.  Workloads whose timestamps are
        #: mostly distinct (e.g. NIC-serialized network sends) would
        #: otherwise allocate two fresh lists per calendar slot, which is
        #: pure garbage-collector pressure; recycling keeps those
        #: workloads allocation-free in steady state.  Capped so a burst
        #: of distinct times cannot pin unbounded memory.
        self._bucket_pool: list = []
        self._active_process = None
        #: Per-environment process serial numbers: deterministic both
        #: across runs *and* across environments in one interpreter, so
        #: golden-trace tests can compare full traces of two worlds.
        self._next_pid = 0
        #: Other per-environment serial families (promises, agents, ...),
        #: kept per-environment for the same golden-trace reason.
        self._serials: dict = {}
        #: Attached :class:`~repro.obs.trace.Tracer`, or None (the default:
        #: tracing disabled).  Every instrumented layer reads this through
        #: its environment, so one attribute enables tracing everywhere.
        self.tracer = None
        #: Attached :class:`~repro.concurrency.vat.Vat`, or None until the
        #: first promise continuation is registered.  The vat drains its
        #: callback queue through :meth:`call_soon`, so continuation
        #: dispatch rides the fast callback lane with no per-promise
        #: process overhead.
        self.vat = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def active_process(self):
        """The :class:`~repro.sim.process.Process` currently executing."""
        return self._active_process

    def new_pid(self) -> int:
        """Next deterministic process serial number for this environment."""
        self._next_pid += 1
        return self._next_pid

    def new_serial(self, kind: str) -> int:
        """Next serial in the per-environment counter family *kind*.

        Trace-visible identifiers (promise ids, agent serials) must come
        from here rather than module-level counters, so that two worlds
        built in the same interpreter produce identical traces.
        """
        serials = self._serials
        value = serials.get(kind, 0) + 1
        serials[kind] = value
        return value

    def peek(self) -> float:
        """Time of the next scheduled event, or :data:`Infinity` if none.

        Lazily discards buckets whose every entry has already been
        consumed (possible when an exception stopped :meth:`run` on the
        last entry of a bucket).
        """
        times = self._times
        buckets = self._buckets
        while times:
            t = times[0]
            b = buckets[t]
            u = b[2]
            if b[1] < len(b[0]) or (u is not None and b[3] < len(u)):
                return t
            heappop(times)
            del buckets[t]
            bpool = self._bucket_pool
            if len(bpool) < _BUCKET_POOL_LIMIT:
                del b[0][:]
                b[1] = 0
                if u is not None:
                    b[2] = None
                    b[3] = 0
                bpool.append(b)
        return Infinity

    def queued_event_count(self) -> int:
        """Number of entries waiting on the calendar (for tests/stats).

        Counts lazily-cancelled timers still occupying their slots, just
        as the previous heap-based kernel counted stale alarm entries.
        """
        count = 0
        for b in self._buckets.values():
            count += len(b[0]) - b[1]
            u = b[2]
            if u is not None:
                count += len(u) - b[3]
        return count // 2

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, event: Any, delay: float = 0.0, priority: int = NORMAL) -> None:
        """Place *event* on the calendar ``delay`` time units from now.

        Ties at the same timestamp are broken first by *priority* then by
        insertion order, which keeps the simulation fully deterministic.
        Only the two documented priorities (:data:`URGENT`, :data:`NORMAL`)
        exist; anything else raises ``ValueError``.
        """
        if delay < 0:
            raise ValueError("cannot schedule an event in the past (delay=%r)" % delay)
        t = self._now + delay
        buckets = self._buckets
        if priority == NORMAL:
            b = buckets.get(t)
            if b is None:
                bpool = self._bucket_pool
                if bpool:
                    b = bpool.pop()
                    lane = b[0]
                    lane.append(_EV)
                    lane.append(event)
                    buckets[t] = b
                else:
                    buckets[t] = [[_EV, event], 0, None, 0]
                heappush(self._times, t)
            else:
                lane = b[0]
                lane.append(_EV)
                lane.append(event)
        elif priority == URGENT:
            b = buckets.get(t)
            if b is None:
                bpool = self._bucket_pool
                if bpool:
                    b = bpool.pop()
                    b[2] = [_EV, event]
                    buckets[t] = b
                else:
                    buckets[t] = [[], 0, [_EV, event], 0]
                heappush(self._times, t)
            else:
                u = b[2]
                if u is None:
                    b[2] = [_EV, event]
                else:
                    u.append(_EV)
                    u.append(event)
        else:
            raise ValueError(
                "unsupported priority %r (use URGENT or NORMAL)" % (priority,)
            )

    # ------------------------------------------------------------------
    # Fast callback lane
    # ------------------------------------------------------------------
    # Timers that only need to invoke a function do not need an Event: no
    # callbacks list, no outcome, nothing to wait on.  These entry points
    # drop the callable and its argument tuple straight into the bucket's
    # lane — zero allocations beyond the argument tuple itself.  The lane
    # is NORMAL priority (nothing in the system needs an urgent bare
    # timer; urgent scheduling stays on :meth:`schedule`).
    #
    # Timers that may need cancelling go through
    # :meth:`call_at_cancellable`, which wraps the callable in a pooled
    # record whose function slot can be nulled in O(1).

    def call_at(self, when: float, fn: Callable[..., None], *args: Any) -> None:
        """Run ``fn(*args)`` at absolute simulated time *when*."""
        if when < self._now:
            raise ValueError(
                "cannot schedule a callback in the past (when=%r, now=%r)"
                % (when, self._now)
            )
        buckets = self._buckets
        b = buckets.get(when)
        if b is None:
            bpool = self._bucket_pool
            if bpool:
                b = bpool.pop()
                lane = b[0]
                lane.append(fn)
                lane.append(args)
                buckets[when] = b
            else:
                buckets[when] = [[fn, args], 0, None, 0]
            heappush(self._times, when)
        else:
            lane = b[0]
            lane.append(fn)
            lane.append(args)

    def call_in(self, delay: float, fn: Callable[..., None], *args: Any) -> None:
        """Run ``fn(*args)`` *delay* time units from now."""
        if delay < 0:
            raise ValueError("cannot schedule a callback in the past (delay=%r)" % delay)
        when = self._now + delay
        buckets = self._buckets
        b = buckets.get(when)
        if b is None:
            bpool = self._bucket_pool
            if bpool:
                b = bpool.pop()
                lane = b[0]
                lane.append(fn)
                lane.append(args)
                buckets[when] = b
            else:
                buckets[when] = [[fn, args], 0, None, 0]
            heappush(self._times, when)
        else:
            lane = b[0]
            lane.append(fn)
            lane.append(args)

    def call_soon(self, fn: Callable[..., None], *args: Any) -> None:
        """Run ``fn(*args)`` at the current time, after pending events."""
        when = self._now
        buckets = self._buckets
        b = buckets.get(when)
        if b is None:
            bpool = self._bucket_pool
            if bpool:
                b = bpool.pop()
                lane = b[0]
                lane.append(fn)
                lane.append(args)
                buckets[when] = b
            else:
                buckets[when] = [[fn, args], 0, None, 0]
            heappush(self._times, when)
        else:
            lane = b[0]
            lane.append(fn)
            lane.append(args)

    def call_at_cancellable(
        self, when: float, fn: Callable[..., None], *args: Any
    ) -> _Callback:
        """Like :meth:`call_at`, but returns a cancellation handle.

        Capture the returned record together with its ``gen`` immediately;
        the pair can later be passed to :meth:`cancel_callback` for an
        O(1) lazy cancel.  Costs one pooled record on top of
        :meth:`call_at` (nothing once the free list is warm).
        """
        if when < self._now:
            raise ValueError(
                "cannot schedule a callback in the past (when=%r, now=%r)"
                % (when, self._now)
            )
        pool = self._cb_pool
        if pool:
            cb = pool.pop()
            cb.fn = fn
        else:
            cb = _Callback(fn)
        buckets = self._buckets
        b = buckets.get(when)
        if b is None:
            bpool = self._bucket_pool
            if bpool:
                b = bpool.pop()
                lane = b[0]
                lane.append(cb)
                lane.append(args)
                buckets[when] = b
            else:
                buckets[when] = [[cb, args], 0, None, 0]
            heappush(self._times, when)
        else:
            lane = b[0]
            lane.append(cb)
            lane.append(args)
        return cb

    def cancel_callback(self, handle: _Callback, gen: int) -> bool:
        """Lazily cancel a pending cancellable timer in O(1).

        *handle* and *gen* must be the record returned by
        :meth:`call_at_cancellable` and its ``gen`` captured at scheduling
        time.  If the record has since fired (and possibly been reissued
        to someone else) the generation no longer matches and this is a
        no-op.  Returns True if the entry was live and is now dead.
        """
        if handle.gen == gen and handle.fn is not None:
            handle.fn = None
            return True
        return False

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Fire the single next entry.

        Raises :class:`EmptySchedule` if the calendar is empty.  A
        lazily-cancelled timer counts as one (no-op) entry, exactly as the
        previous kernel fired the stale timer's guard function.
        """
        times = self._times
        buckets = self._buckets
        while times:
            t = times[0]
            b = buckets[t]
            u = b[2]
            if u is not None and b[3] < len(u):
                cur = b[3]
                head = u[cur]
                payload = u[cur + 1]
                b[3] = cur + 2
            elif b[1] < len(b[0]):
                lane = b[0]
                cur = b[1]
                head = lane[cur]
                payload = lane[cur + 1]
                b[1] = cur + 2
            else:
                heappop(times)
                del buckets[t]
                bpool = self._bucket_pool
                if len(bpool) < _BUCKET_POOL_LIMIT:
                    del b[0][:]
                    b[1] = 0
                    if u is not None:
                        b[2] = None
                        b[3] = 0
                    bpool.append(b)
                continue
            self._now = t
            if head is _EV:
                payload._fire(self)
            elif head.__class__ is _Callback:
                fn = head.fn
                head.fn = None
                head.gen += 1
                self._cb_pool.append(head)
                if fn is not None:
                    fn(*payload)
            else:
                head(*payload)
            return
        raise EmptySchedule()

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        *until* may be ``None`` (run until the calendar drains), a number
        (run until that simulated time), or an event (run until it fires and
        return its value).
        """
        stop_event = None
        if until is None:
            limit = Infinity
        elif hasattr(until, "callbacks"):
            stop_event = until
            limit = Infinity
            if until.triggered:
                return until.value_or_raise()
            until.callbacks.append(_Stopper(until))
        else:
            limit = float(until)
            if limit < self._now:
                raise ValueError(
                    "until (%r) must not be earlier than now (%r)" % (limit, self._now)
                )

        # Inlined event loop (the hottest code in the whole simulator; see
        # benchmarks/perf).  Per bucket: drain the urgent lane, then the
        # normal lane, re-checking the urgent lane before every fire so a
        # same-time URGENT insert made by a callback still runs first —
        # exactly the ordering the old (time, priority, seq) heap
        # produced.  Cursors are written back in `finally` so an exception
        # escaping a callback (including StopSimulation from run-until-
        # event) leaves the calendar resumable.
        times = self._times
        buckets = self._buckets
        pool = self._cb_pool
        bpool = self._bucket_pool
        cb_cls = _Callback
        ev_cls = _EVENT_CLASS
        to_cls = _TIMEOUT_CLASS
        ev_mark = _EV
        try:
            while times:
                t = times[0]
                if t > limit:
                    self._now = limit
                    break
                self._now = t
                b = buckets[t]
                nlane = b[0]
                i = b[1]
                try:
                    while True:
                        u = b[2]
                        if u is not None and b[3] < len(u):
                            cur = b[3]
                            head = u[cur]
                            payload = u[cur + 1]
                            b[3] = cur + 2
                        elif i < len(nlane):
                            head = nlane[i]
                            payload = nlane[i + 1]
                            i += 2
                        else:
                            break
                        if head is ev_mark:
                            cls = payload.__class__
                            if cls is to_cls or cls is ev_cls:
                                # Exact inline of events.Event._fire.
                                callbacks = payload.callbacks
                                payload.callbacks = None
                                if callbacks is None:  # pragma: no cover
                                    raise RuntimeError(
                                        "event %r fired twice" % payload
                                    )
                                for callback in callbacks:
                                    callback(payload)
                                if not payload._ok and not payload.defused:
                                    raise payload._value
                            else:
                                payload._fire(self)
                        elif head.__class__ is cb_cls:
                            fn = head.fn
                            head.fn = None
                            head.gen += 1
                            pool.append(head)
                            if fn is not None:
                                fn(*payload)
                        else:
                            head(*payload)
                finally:
                    b[1] = i
                heappop(times)
                del buckets[t]
                # Recycle the drained bucket (both lanes are exhausted —
                # the inner loop only exits when nothing is left).
                if len(bpool) < _BUCKET_POOL_LIMIT:
                    del nlane[:]
                    b[1] = 0
                    if b[2] is not None:
                        b[2] = None
                        b[3] = 0
                    bpool.append(b)
        except StopSimulation as stop:
            return stop.value

        if stop_event is not None:
            raise RuntimeError(
                "simulation ran out of events before %r fired" % (stop_event,)
            )
        if limit is not Infinity:
            self._now = max(self._now, limit)
        return None

    # ------------------------------------------------------------------
    # Factory helpers (populated by sibling modules to avoid import cycles)
    # ------------------------------------------------------------------
    def event(self):
        """Create a fresh untriggered :class:`~repro.sim.events.Event`."""
        from repro.sim.events import Event

        return Event(self)

    def timeout(self, delay: float, value: Any = None):
        """Create a :class:`~repro.sim.events.Timeout` firing after *delay*."""
        from repro.sim.events import Timeout

        return Timeout(self, delay, value)

    def process(self, generator: Generator):
        """Spawn a new simulated :class:`~repro.sim.process.Process`."""
        from repro.sim.process import Process

        return Process(self, generator)

    def all_of(self, events: Iterable[Any]):
        """Condition event that fires when every event in *events* has."""
        from repro.sim.events import AllOf

        return AllOf(self, list(events))

    def any_of(self, events: Iterable[Any]):
        """Condition event that fires when any event in *events* has."""
        from repro.sim.events import AnyOf

        return AnyOf(self, list(events))


class _Stopper:
    """Callback object that stops :meth:`Environment.run` at an event."""

    def __init__(self, event: Any) -> None:
        self._event = event

    def __call__(self, event: Any) -> None:
        raise StopSimulation(event.value_or_raise())
