"""Discrete-event simulation kernel.

This module provides the deterministic execution substrate for the whole
reproduction.  The 1988 paper ran on real Argus nodes; we instead run every
guardian, agent and network link inside a single simulated timeline so that
per-message overheads, wire latencies and handler compute times are explicit,
controllable model parameters (see DESIGN.md section 2).

The design follows the classic event-calendar architecture: an
:class:`Environment` owns a priority queue of ``(time, priority, seq, event)``
entries and fires events in time order.  Simulated processes are Python
generators that yield :class:`~repro.sim.events.Event` objects to block; the
machinery for that lives in :mod:`repro.sim.process`.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Tuple

__all__ = [
    "Environment",
    "EmptySchedule",
    "StopSimulation",
    "Infinity",
    "URGENT",
    "NORMAL",
]

#: Sentinel for "no arguments" so every no-arg callback shares one tuple.
_NO_ARGS: Tuple = ()

#: Scheduling priority for events that must fire before ordinary events at
#: the same timestamp (e.g. process resumption after an interrupt).
URGENT = 0

#: Default scheduling priority.
NORMAL = 1

#: A time later than any other; used as the default run-until bound.
Infinity = float("inf")


class _Callback:
    """A bare calendar entry that invokes a function when it fires.

    The fast lane for timers that only need to run a callable: no Event
    object, no callbacks list, no triggered/processed state — one small
    slotted object on the heap.  Used by the network delivery path and by
    :class:`~repro.sim.alarm.Alarm`.
    """

    __slots__ = ("fn", "args")

    def __init__(self, fn: Callable[..., None], args: Tuple) -> None:
        self.fn = fn
        self.args = args

    def _fire(self, env: "Environment") -> None:
        self.fn(*self.args)

    def __repr__(self) -> str:
        return "<_Callback %r at 0x%x>" % (self.fn, id(self))


class EmptySchedule(Exception):
    """Raised by :meth:`Environment.step` when no events remain."""


class StopSimulation(Exception):
    """Raised internally to stop :meth:`Environment.run` at a trigger event."""

    def __init__(self, value: Any) -> None:
        super().__init__(value)
        self.value = value


class Environment:
    """A simulation environment: clock plus event calendar.

    The environment is deliberately small; everything else (timeouts,
    processes, synchronization, networks, guardians) is built on
    :meth:`schedule` and :meth:`run`.
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: List[Tuple[float, int, int, Any]] = []
        self._seq = 0
        self._active_process = None
        #: Per-environment process serial numbers: deterministic both
        #: across runs *and* across environments in one interpreter, so
        #: golden-trace tests can compare full traces of two worlds.
        self._next_pid = 0
        #: Other per-environment serial families (promises, agents, ...),
        #: kept per-environment for the same golden-trace reason.
        self._serials: dict = {}
        #: Attached :class:`~repro.obs.trace.Tracer`, or None (the default:
        #: tracing disabled).  Every instrumented layer reads this through
        #: its environment, so one attribute enables tracing everywhere.
        self.tracer = None
        #: Attached :class:`~repro.concurrency.vat.Vat`, or None until the
        #: first promise continuation is registered.  The vat drains its
        #: callback queue through :meth:`call_soon`, so continuation
        #: dispatch rides the fast callback lane with no per-promise
        #: process overhead.
        self.vat = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def active_process(self):
        """The :class:`~repro.sim.process.Process` currently executing."""
        return self._active_process

    def new_pid(self) -> int:
        """Next deterministic process serial number for this environment."""
        self._next_pid += 1
        return self._next_pid

    def new_serial(self, kind: str) -> int:
        """Next serial in the per-environment counter family *kind*.

        Trace-visible identifiers (promise ids, agent serials) must come
        from here rather than module-level counters, so that two worlds
        built in the same interpreter produce identical traces.
        """
        serials = self._serials
        value = serials.get(kind, 0) + 1
        serials[kind] = value
        return value

    def peek(self) -> float:
        """Time of the next scheduled event, or :data:`Infinity` if none."""
        if not self._queue:
            return Infinity
        return self._queue[0][0]

    def queued_event_count(self) -> int:
        """Number of events waiting on the calendar (for tests/stats)."""
        return len(self._queue)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, event: Any, delay: float = 0.0, priority: int = NORMAL) -> None:
        """Place *event* on the calendar ``delay`` time units from now.

        Ties at the same timestamp are broken first by *priority* then by
        insertion order, which keeps the simulation fully deterministic.
        """
        if delay < 0:
            raise ValueError("cannot schedule an event in the past (delay=%r)" % delay)
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._seq, event))

    # ------------------------------------------------------------------
    # Fast callback lane
    # ------------------------------------------------------------------
    # Timers that only need to invoke a function do not need an Event: no
    # callbacks list, no outcome, nothing to wait on.  These entry points
    # put a bare slotted _Callback on the calendar instead, which is the
    # difference between one small allocation and an Event + Timeout +
    # closure (or a whole generator Process) per occurrence.

    def call_at(
        self,
        when: float,
        fn: Callable[..., None],
        *args: Any,
        priority: int = NORMAL,
    ) -> None:
        """Run ``fn(*args)`` at absolute simulated time *when*."""
        if when < self._now:
            raise ValueError(
                "cannot schedule a callback in the past (when=%r, now=%r)"
                % (when, self._now)
            )
        self._seq += 1
        heapq.heappush(
            self._queue, (when, priority, self._seq, _Callback(fn, args or _NO_ARGS))
        )

    def call_in(
        self,
        delay: float,
        fn: Callable[..., None],
        *args: Any,
        priority: int = NORMAL,
    ) -> None:
        """Run ``fn(*args)`` *delay* time units from now."""
        if delay < 0:
            raise ValueError("cannot schedule a callback in the past (delay=%r)" % delay)
        self._seq += 1
        heapq.heappush(
            self._queue,
            (self._now + delay, priority, self._seq, _Callback(fn, args or _NO_ARGS)),
        )

    def call_soon(
        self, fn: Callable[..., None], *args: Any, priority: int = NORMAL
    ) -> None:
        """Run ``fn(*args)`` at the current time, after pending events."""
        self._seq += 1
        heapq.heappush(
            self._queue,
            (self._now, priority, self._seq, _Callback(fn, args or _NO_ARGS)),
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Fire the single next event.

        Raises :class:`EmptySchedule` if the calendar is empty.
        """
        try:
            self._now, _, _, event = heapq.heappop(self._queue)
        except IndexError:
            raise EmptySchedule() from None
        event._fire(self)

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        *until* may be ``None`` (run until the calendar drains), a number
        (run until that simulated time), or an event (run until it fires and
        return its value).
        """
        stop_event = None
        if until is None:
            limit = Infinity
        elif hasattr(until, "callbacks"):
            stop_event = until
            limit = Infinity
            if until.triggered:
                return until.value_or_raise()
            until.callbacks.append(_Stopper(until))
        else:
            limit = float(until)
            if limit < self._now:
                raise ValueError(
                    "until (%r) must not be earlier than now (%r)" % (limit, self._now)
                )

        # Inlined event loop: one heappop + _fire per event, no per-event
        # method call or exception handling (this is the hottest loop in
        # the whole simulator; see benchmarks/perf).
        queue = self._queue
        pop = heapq.heappop
        try:
            while queue:
                if queue[0][0] > limit:
                    self._now = limit
                    break
                self._now, _, _, event = pop(queue)
                event._fire(self)
        except StopSimulation as stop:
            return stop.value

        if stop_event is not None:
            raise RuntimeError(
                "simulation ran out of events before %r fired" % (stop_event,)
            )
        if limit is not Infinity:
            self._now = max(self._now, limit)
        return None

    # ------------------------------------------------------------------
    # Factory helpers (populated by sibling modules to avoid import cycles)
    # ------------------------------------------------------------------
    def event(self):
        """Create a fresh untriggered :class:`~repro.sim.events.Event`."""
        from repro.sim.events import Event

        return Event(self)

    def timeout(self, delay: float, value: Any = None):
        """Create a :class:`~repro.sim.events.Timeout` firing after *delay*."""
        from repro.sim.events import Timeout

        return Timeout(self, delay, value)

    def process(self, generator: Generator):
        """Spawn a new simulated :class:`~repro.sim.process.Process`."""
        from repro.sim.process import Process

        return Process(self, generator)

    def all_of(self, events: Iterable[Any]):
        """Condition event that fires when every event in *events* has."""
        from repro.sim.events import AllOf

        return AllOf(self, list(events))

    def any_of(self, events: Iterable[Any]):
        """Condition event that fires when any event in *events* has."""
        from repro.sim.events import AnyOf

        return AnyOf(self, list(events))


class _Stopper:
    """Callback object that stops :meth:`Environment.run` at an event."""

    def __init__(self, event: Any) -> None:
        self._event = event

    def __call__(self, event: Any) -> None:
        raise StopSimulation(event.value_or_raise())
