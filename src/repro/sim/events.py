"""Events for the simulation kernel.

An :class:`Event` is the unit of blocking: simulated processes yield events
and are resumed when the event *fires*.  Events pass through three states:

* **untriggered** — created, not yet scheduled;
* **triggered** — given an outcome (a value or an exception) and placed on
  the environment's calendar;
* **processed** — fired; its callbacks have run and waiting processes have
  been resumed.

Once triggered an event's outcome never changes, mirroring the monotonicity
that the paper requires of promises ("once a promise is ready it remains
ready from then on and its value never changes again").
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from repro.sim.kernel import Environment, NORMAL

__all__ = ["Event", "Timeout", "Condition", "AllOf", "AnyOf", "ConditionValue"]

_PENDING = object()


class Event:
    """A one-shot occurrence that processes can wait for."""

    __slots__ = ("env", "callbacks", "_value", "_ok", "defused")

    def __init__(self, env: Environment) -> None:
        self.env = env
        #: List of callables invoked (with the event) when the event fires,
        #: or ``None`` once the event has been processed.
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        #: Set ``True`` by a handler that has dealt with a failed event so
        #: the kernel does not re-raise the exception at the top level.
        self.defused = False

    def __repr__(self) -> str:
        state = (
            "untriggered"
            if not self.triggered
            else ("processed" if self.processed else "triggered")
        )
        return "<%s %s at 0x%x>" % (type(self).__name__, state, id(self))

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has an outcome."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the outcome is a success value (only valid if triggered)."""
        if self._ok is None:
            raise RuntimeError("event %r has not yet been triggered" % self)
        return self._ok

    @property
    def value(self) -> Any:
        """The outcome: the success value or the exception object."""
        if self._value is _PENDING:
            raise RuntimeError("event %r has not yet been triggered" % self)
        return self._value

    def value_or_raise(self) -> Any:
        """Return the success value, or raise the failure exception."""
        if self._value is _PENDING:
            raise RuntimeError("event %r has not yet been triggered" % self)
        if not self._ok:
            self.defused = True
            raise self._value
        return self._value

    # ------------------------------------------------------------------
    # Triggering
    # ------------------------------------------------------------------
    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Trigger the event with a success *value*."""
        if self.triggered:
            raise RuntimeError("event %r has already been triggered" % self)
        self._ok = True
        self._value = value
        self.env.schedule(self, 0.0, priority)
        return self

    def fail(self, exception: BaseException, priority: int = NORMAL) -> "Event":
        """Trigger the event with a failure *exception*."""
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception, got %r" % (exception,))
        if self.triggered:
            raise RuntimeError("event %r has already been triggered" % self)
        self._ok = False
        self._value = exception
        self.env.schedule(self, 0.0, priority)
        return self

    def trigger(self, outcome: "Event") -> None:
        """Copy another event's outcome onto this one (callback-compatible)."""
        if outcome._ok:
            self.succeed(outcome._value)
        else:
            self.fail(outcome._value)

    # ------------------------------------------------------------------
    # Firing (kernel internal)
    # ------------------------------------------------------------------
    def _fire(self, env: Environment) -> None:
        callbacks, self.callbacks = self.callbacks, None
        if callbacks is None:  # pragma: no cover - defensive
            raise RuntimeError("event %r fired twice" % self)
        for callback in callbacks:
            callback(self)
        if not self._ok and not self.defused:
            raise self._value


class Timeout(Event):
    """An event that fires automatically after a fixed delay."""

    __slots__ = ("_delay",)

    def __init__(self, env: Environment, delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError("negative timeout delay: %r" % (delay,))
        super().__init__(env)
        self._delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, delay)

    @property
    def delay(self) -> float:
        return self._delay

    def __repr__(self) -> str:
        return "<Timeout delay=%r at 0x%x>" % (self._delay, id(self))


class ConditionValue:
    """Ordered mapping from events to outcomes, produced by conditions."""

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: List[Event] = []

    def __contains__(self, event: Event) -> bool:
        return event in self.events

    def __getitem__(self, event: Event) -> Any:
        if event not in self.events:
            raise KeyError(event)
        return event.value

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def values(self) -> List[Any]:
        """Outcome values of the fired events, in condition order."""
        return [event.value for event in self.events]

    def __repr__(self) -> str:
        return "<ConditionValue %r>" % (self.values(),)


class Condition(Event):
    """Fires when *evaluate* says enough of the sub-events have fired.

    A failed sub-event fails the whole condition immediately.
    """

    __slots__ = ("_evaluate", "_events", "_count")

    def __init__(
        self,
        env: Environment,
        evaluate: Callable[[List[Event], int], bool],
        events: List[Event],
    ) -> None:
        super().__init__(env)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0

        for event in self._events:
            if event.env is not env:
                raise ValueError("all condition events must share one environment")

        if not self._events:
            self.succeed(ConditionValue())
            return

        for event in self._events:
            if event.processed:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _collect_value(self) -> ConditionValue:
        value = ConditionValue()
        for event in self._events:
            # Use `processed`, not `triggered`: a Timeout is triggered from
            # birth (its outcome is fixed) but has not *happened* until it
            # fires.
            if event.processed and event.ok:
                value.events.append(event)
        return value

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            event.defused = True
            self.fail(event.value)
            return
        self._count += 1
        if self._evaluate(self._events, self._count):
            self.succeed(self._collect_value())

    @property
    def events(self) -> List[Event]:
        return list(self._events)


class AllOf(Condition):
    """Condition satisfied once every sub-event has fired."""

    __slots__ = ()

    def __init__(self, env: Environment, events: List[Event]) -> None:
        super().__init__(env, lambda evts, count: count == len(evts), events)


class AnyOf(Condition):
    """Condition satisfied once any sub-event has fired."""

    __slots__ = ()

    def __init__(self, env: Environment, events: List[Event]) -> None:
        super().__init__(env, lambda evts, count: count >= 1, events)


# Let the kernel's run loop inline the exact-class fire path for these two
# hot classes without an import cycle (subclasses still dispatch through
# their own _fire).
from repro.sim import kernel as _kernel  # noqa: E402

_kernel._EVENT_CLASS = Event
_kernel._TIMEOUT_CLASS = Timeout
