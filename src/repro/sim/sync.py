"""Synchronization primitives for simulated processes.

The paper notes that the shared promise queue of Figure 4-1 "can be
implemented using standard synchronization mechanisms such as semaphores [3]
or monitors [8]".  This module provides those mechanisms over the simulation
kernel: a counting semaphore, a mutual-exclusion lock, a monitor-style
condition variable, and a blocking FIFO queue built from them.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List, Optional

from repro.sim.events import Event
from repro.sim.kernel import Environment

__all__ = ["Semaphore", "Lock", "ConditionVariable", "BlockingQueue", "QueueClosed"]


class _PutEvent(Event):
    """A blocked put: the event plus the item awaiting queue space."""

    __slots__ = ("_pending_item",)


class Semaphore:
    """Counting semaphore (Dijkstra's P/V) for simulated processes."""

    def __init__(self, env: Environment, value: int = 1) -> None:
        if value < 0:
            raise ValueError("semaphore value must be >= 0, got %r" % (value,))
        self.env = env
        self._value = value
        self._waiters: Deque[Event] = deque()

    @property
    def value(self) -> int:
        """Current counter value (0 when all permits are held)."""
        return self._value

    @property
    def waiting(self) -> int:
        """Number of processes blocked in :meth:`acquire`."""
        return len(self._waiters)

    def acquire(self) -> Event:
        """Return an event that fires once a permit is obtained.

        Yield the returned event from a simulated process::

            yield sem.acquire()
        """
        event = Event(self.env)
        if self._value > 0:
            self._value -= 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def try_acquire(self) -> bool:
        """Take a permit without blocking; return whether one was taken."""
        if self._value > 0:
            self._value -= 1
            return True
        return False

    def release(self) -> None:
        """Return a permit, waking the longest-waiting process if any."""
        while self._waiters:
            waiter = self._waiters.popleft()
            if not waiter.triggered:  # skip waiters cancelled by interrupts
                waiter.succeed()
                return
        self._value += 1

    def cancel(self, event: Event) -> None:
        """Withdraw a pending :meth:`acquire` (used on interrupt)."""
        try:
            self._waiters.remove(event)
        except ValueError:
            pass


class Lock:
    """Mutual-exclusion lock with owner tracking."""

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._sem = Semaphore(env, 1)
        self._owner: Optional[Any] = None

    @property
    def locked(self) -> bool:
        return self._sem.value == 0

    @property
    def owner(self) -> Optional[Any]:
        """The process holding the lock (if it recorded itself)."""
        return self._owner

    def acquire(self) -> Event:
        """Yieldable: take the lock, recording the acquiring process."""
        event = self._sem.acquire()
        holder = self.env.active_process

        def record(_event: Event) -> None:
            self._owner = holder

        if event.triggered:
            self._owner = holder
        else:
            event.callbacks.append(record)
        return event

    def release(self) -> None:
        """Release the lock; errors if it is not held."""
        if not self.locked:
            raise RuntimeError("release of unlocked lock")
        self._owner = None
        self._sem.release()


class ConditionVariable:
    """Monitor-style condition variable (Hoare [8], signal-and-continue).

    Usage from a simulated process holding *lock*::

        yield cv.wait(lock)      # atomically releases lock, reacquires after
    """

    def __init__(self, env: Environment, lock: Lock) -> None:
        self.env = env
        self.lock = lock
        self._waiters: List[Event] = []

    @property
    def waiting(self) -> int:
        return len(self._waiters)

    def wait(self, timeout: Optional[float] = None) -> Event:
        """Release the lock, block until notified, then reacquire the lock.

        Returns a composite event suitable for ``yield``.  The event's value
        is ``True`` if notified, ``False`` on timeout.
        """
        if not self.lock.locked:
            raise RuntimeError("wait() requires the lock to be held")

        notified = Event(self.env)
        self._waiters.append(notified)
        self.lock.release()

        done = Event(self.env)

        def reacquire(was_notified: bool) -> None:
            acq = self.lock.acquire()

            def finish(_event: Event) -> None:
                done.succeed(was_notified)

            if acq.triggered:
                finish(acq)
            else:
                acq.callbacks.append(finish)

        settled = {"done": False}

        def on_notify(_event: Event) -> None:
            if settled["done"]:
                return
            settled["done"] = True
            reacquire(True)

        if timeout is None:
            notified.callbacks.append(on_notify)
        else:
            timer = self.env.timeout(timeout)

            def on_timer(_event: Event) -> None:
                if settled["done"] or notified.triggered:
                    return
                settled["done"] = True
                try:
                    self._waiters.remove(notified)
                except ValueError:
                    pass
                reacquire(False)

            notified.callbacks.append(on_notify)
            timer.callbacks.append(on_timer)
        return done

    def notify(self, n: int = 1) -> int:
        """Wake up to *n* waiters; return how many were woken."""
        woken = 0
        while self._waiters and woken < n:
            waiter = self._waiters.pop(0)
            if not waiter.triggered:
                waiter.succeed()
                woken += 1
        return woken

    def notify_all(self) -> int:
        """Wake every waiter; returns how many were woken."""
        return self.notify(len(self._waiters))


class QueueClosed(Exception):
    """Raised to getters blocked on a :class:`BlockingQueue` that is closed.

    This models the "termination problem" of section 4.1: if the producing
    process dies, the consumer would hang forever in ``deq`` unless the queue
    is torn down.  The coenter construct closes shared queues when it
    terminates arms early.
    """

    def __init__(self, reason: Any = None) -> None:
        super().__init__(reason)
        self.reason = reason


class BlockingQueue:
    """Unbounded FIFO queue; ``get`` blocks while empty.

    This is the ``queue[pt]`` abstraction of Figures 4-1 and 4-2: producers
    ``enq`` promises, the consumer ``deq``s them and waits when the queue is
    empty.
    """

    def __init__(self, env: Environment, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive, got %r" % (capacity,))
        self.env = env
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[Event] = deque()
        self._closed: Optional[QueueClosed] = None

    def __len__(self) -> int:
        return len(self._items)

    @property
    def closed(self) -> bool:
        return self._closed is not None

    def put(self, item: Any) -> Event:
        """Enqueue *item*; blocks only when a capacity is set and reached."""
        event = _PutEvent(self.env)
        if self._closed is not None:
            event.fail(self._closed)
            return event
        while self._getters:
            getter = self._getters.popleft()
            if not getter.triggered:
                getter.succeed(item)
                event.succeed()
                return event
        if self.capacity is not None and len(self._items) >= self.capacity:
            self._putters.append(event)
            event._pending_item = item
            return event
        self._items.append(item)
        event.succeed()
        return event

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; returns False when full or closed."""
        if self._closed is not None:
            return False
        if self.capacity is not None and len(self._items) >= self.capacity and not self._getters:
            return False
        self.put(item)
        return True

    def get(self) -> Event:
        """Return an event yielding the oldest item; fails if queue closed."""
        event = Event(self.env)
        if self._items:
            event.succeed(self._items.popleft())
            self._admit_putter()
            return event
        if self._closed is not None:
            event.fail(self._closed)
            return event
        self._getters.append(event)
        return event

    def try_get(self) -> Any:
        """Non-blocking get; raises IndexError when empty."""
        if not self._items:
            raise IndexError("queue is empty")
        item = self._items.popleft()
        self._admit_putter()
        return item

    def close(self, reason: Any = None) -> None:
        """Close the queue: all pending and future gets/puts fail.

        Items already queued remain retrievable via :meth:`try_get` drain by
        cleanup code, but blocked getters are failed immediately, which is
        precisely how the coenter avoids the Figure 4-1 hang.
        """
        if self._closed is not None:
            return
        self._closed = QueueClosed(reason)
        while self._getters:
            getter = self._getters.popleft()
            if not getter.triggered:
                getter.defused = True
                getter.fail(self._closed)
        while self._putters:
            putter = self._putters.popleft()
            if not putter.triggered:
                putter.defused = True
                putter.fail(self._closed)

    def _admit_putter(self) -> None:
        while self._putters:
            putter = self._putters.popleft()
            if not putter.triggered:
                self._items.append(putter._pending_item)
                putter.succeed()
                return
