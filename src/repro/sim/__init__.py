"""Discrete-event simulation kernel (deterministic substrate).

See :mod:`repro.sim.kernel` for the event loop, :mod:`repro.sim.process`
for generator-based processes, :mod:`repro.sim.sync` for semaphores,
condition variables and blocking queues.
"""

from repro.sim.alarm import Alarm
from repro.sim.events import AllOf, AnyOf, Condition, ConditionValue, Event, Timeout
from repro.sim.kernel import EmptySchedule, Environment, Infinity
from repro.sim.process import Interrupt, Process, ProcessKilled
from repro.sim.rng import RngRegistry
from repro.sim.sync import (
    BlockingQueue,
    ConditionVariable,
    Lock,
    QueueClosed,
    Semaphore,
)

__all__ = [
    "Alarm",
    "AllOf",
    "AnyOf",
    "BlockingQueue",
    "Condition",
    "ConditionValue",
    "ConditionVariable",
    "EmptySchedule",
    "Environment",
    "Event",
    "Infinity",
    "Interrupt",
    "Lock",
    "Process",
    "ProcessKilled",
    "QueueClosed",
    "RngRegistry",
    "Semaphore",
    "Timeout",
]
