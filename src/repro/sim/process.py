"""Simulated processes.

A process wraps a Python generator.  The generator *yields* events to block;
when a yielded event fires, the kernel resumes the generator with the event's
value (or throws the event's exception into it).  A process is itself an
event that fires when the generator finishes, so processes can wait on each
other — this is the substrate both for Argus processes/agents and for the
``fork``/``coenter`` constructs of the paper.

Interrupts model forced early termination (the coenter's termination of
sibling arms, section 4.2 of the paper).  ``Interrupt`` is thrown into the
generator at its current suspension point; Argus-level code layers
critical-section tracking and "wounding" on top (see
:mod:`repro.concurrency.coenter`).
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.sim.events import Event
from repro.sim.kernel import Environment, URGENT

__all__ = ["Process", "Interrupt", "ProcessKilled"]


class Interrupt(Exception):
    """Thrown into a process that another process interrupts.

    ``cause`` carries an arbitrary explanation object.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)

    @property
    def cause(self) -> Any:
        return self.args[0]


class ProcessKilled(Exception):
    """Outcome of a process that was killed before completing."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)

    @property
    def cause(self) -> Any:
        return self.args[0]


class _Initialize(Event):
    """Internal event used to start a freshly created process."""

    __slots__ = ()

    def __init__(self, env: Environment, process: "Process") -> None:
        super().__init__(env)
        self._ok = True
        self._value = None
        self.callbacks.append(process._resume)
        env.schedule(self, 0.0, URGENT)


class Process(Event):
    """A running simulated process; also an event for its own completion."""

    # _critical_depth and _wound_cause belong to the critical-section layer
    # (repro.concurrency.critical) which annotates processes; they are
    # declared here so Process stays fully slotted.
    # span belongs to the observability layer (repro.obs): the causal
    # (trace_id, span_id, parent_span_id) context the process runs under,
    # or None.  Set only when tracing is enabled, by the dispatcher (handler
    # executions), fork, and coenter; read by repro.obs.trace.mint_span.
    __slots__ = (
        "_generator",
        "pid",
        "_target",
        "_kill_pending",
        "_critical_depth",
        "_wound_cause",
        "span",
    )

    def __init__(self, env: Environment, generator: Generator) -> None:
        if not hasattr(generator, "throw"):
            raise TypeError(
                "process requires a generator, got %r -- did you call a plain "
                "function instead of a generator function?" % (generator,)
            )
        super().__init__(env)
        self._generator = generator
        #: Deterministic serial number (stable across identical runs, and
        #: across environments within one interpreter — the counter is
        #: per-environment).
        self.pid = env.new_pid()
        #: The event this process is currently waiting on, or None.
        self._target: Optional[Event] = None
        #: Set when the process killed itself (or was killed while
        #: executing); honoured at its next suspension point.
        self._kill_pending: Optional[ProcessKilled] = None
        #: Causal span context this process runs under (tracing only).
        self.span = None
        tracer = env.tracer
        if tracer is not None:
            tracer.emit(
                "process.created",
                pid=self.pid,
                name=getattr(generator, "__name__", str(generator)),
            )
        _Initialize(env, self)

    def __repr__(self) -> str:
        name = getattr(self._generator, "__name__", self._generator)
        return "<Process(%s) at 0x%x>" % (name, id(self))

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    @property
    def target(self) -> Optional[Event]:
        """The event the process is currently suspended on."""
        return self._target

    # ------------------------------------------------------------------
    # Interruption
    # ------------------------------------------------------------------
    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process as soon as possible.

        Interrupting a finished process is an error; interrupting a process
        that is waiting on an event detaches it from that event first.
        """
        if self.triggered:
            raise RuntimeError("cannot interrupt %r: it has already finished" % self)
        if self.env.active_process is self:
            raise RuntimeError("a process cannot interrupt itself")
        _Interruption(self, cause)

    def kill(self, cause: Any = None) -> None:
        """Forcibly terminate the process without running its handlers.

        The generator is closed; the process event fails with
        :class:`ProcessKilled` (pre-defused, since a kill is deliberate).
        Used by the runtime to model guardian crashes.
        """
        if self.triggered:
            return
        if self.env.active_process is self:
            # A process cannot close its own running generator; honour the
            # kill at the next suspension point instead.
            self._kill_pending = ProcessKilled(cause)
            return
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
            self._target = None
        self._generator.close()
        self.defused = True
        tracer = self.env.tracer
        if tracer is not None:
            tracer.emit("process.finished", pid=self.pid, status="killed")
        self.fail(ProcessKilled(cause))

    # ------------------------------------------------------------------
    # Kernel internals
    # ------------------------------------------------------------------
    def _resume(self, event: Event) -> None:
        """Resume the generator with *event*'s outcome."""
        self.env._active_process = self
        tracer = self.env.tracer
        if tracer is not None:
            tracer.emit("process.resumed", pid=self.pid)
        try:
            while True:
                try:
                    if event is None:
                        target = self._generator.send(None)
                    elif event.ok:
                        target = self._generator.send(event.value)
                    else:
                        # The exception is being delivered into the process;
                        # it is now that process's responsibility.
                        event.defused = True
                        target = self._generator.throw(event.value)
                except StopIteration as stop:
                    self._target = None
                    if tracer is not None:
                        tracer.emit("process.finished", pid=self.pid, status="ok")
                    self.succeed(stop.value)
                    break
                except BaseException as exc:
                    self._target = None
                    if tracer is not None:
                        tracer.emit("process.finished", pid=self.pid, status="error")
                    self.fail(exc)
                    break

                if self._kill_pending is not None:
                    pending = self._kill_pending
                    self._kill_pending = None
                    self._generator.close()
                    self._target = None
                    self.defused = True
                    if tracer is not None:
                        tracer.emit("process.finished", pid=self.pid, status="killed")
                    self.fail(pending)
                    break

                if not isinstance(target, Event):
                    exc = TypeError(
                        "process %r yielded a non-event: %r" % (self, target)
                    )
                    event = Event(self.env)
                    event._ok = False
                    event._value = exc
                    continue

                if target.processed:
                    # Already fired: loop around and deliver immediately.
                    event = target
                    continue

                target.callbacks.append(self._resume)
                self._target = target
                break
        finally:
            self.env._active_process = None


class _Interruption(Event):
    """Carrier event that delivers an :class:`Interrupt` into a process."""

    __slots__ = ("_process",)

    def __init__(self, process: Process, cause: Any) -> None:
        super().__init__(process.env)
        self._process = process
        self._ok = False
        self._value = Interrupt(cause)
        self.defused = True
        self.callbacks.append(self._deliver)
        process.env.schedule(self, 0.0, URGENT)

    def _deliver(self, event: Event) -> None:
        process = self._process
        if process.triggered:
            return  # finished in the meantime; nothing to interrupt
        if process._target is not None and process._target.callbacks is not None:
            try:
                process._target.callbacks.remove(process._resume)
            except ValueError:
                pass
        process._target = None
        process._resume(self)
