"""Cancellable one-shot alarms.

Timer-driven behaviour (buffer flush deadlines, retransmission timeouts,
acknowledgement delays) needs a primitive that can be armed, re-armed and
cancelled cheaply without leaking processes.  ``Alarm`` wraps the pattern:
one alarm object, at most one pending callback, cancel/re-arm at will.

Cancellation and re-arming are *lazy*: the alarm never removes anything
from the calendar (heap deletion is O(n)); a stale timer that fires simply
notices the deadline moved or vanished.  Unlike the naive one-timer-per-arm
scheme, though, re-arming reuses a pending timer whenever that timer fires
at or before the new deadline — so a hot alarm that is re-armed on every
packet (the RTO pattern) keeps a single calendar entry instead of piling up
one dead Timeout + closure per packet.  Timers go through the kernel's bare
callback lane (:meth:`~repro.sim.kernel.Environment.call_at`), so no Event
objects are allocated at all.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim.kernel import Environment

__all__ = ["Alarm"]


class Alarm:
    """A re-armable one-shot timer firing a callback at a deadline."""

    __slots__ = ("env", "_callback", "_deadline", "_next_fire")

    def __init__(self, env: Environment, callback: Callable[[], None]) -> None:
        self.env = env
        self._callback = callback
        #: When the callback should run, or None when disarmed.
        self._deadline: Optional[float] = None
        #: Earliest pending calendar timer known to cover the deadline, or
        #: None if no timer is known to be pending.  Invariant: whenever
        #: ``_deadline`` is set, some pending timer fires at or before it.
        self._next_fire: Optional[float] = None

    @property
    def armed(self) -> bool:
        return self._deadline is not None

    @property
    def deadline(self) -> Optional[float]:
        return self._deadline

    def arm(self, delay: float) -> None:
        """(Re-)arm the alarm to fire *delay* from now, replacing any
        earlier deadline."""
        if delay < 0:
            raise ValueError("alarm delay must be >= 0, got %r" % (delay,))
        deadline = self.env.now + delay
        self._deadline = deadline
        if self._next_fire is None or self._next_fire > deadline:
            self._next_fire = deadline
            self.env.call_at(deadline, self._on_timer)

    def arm_if_idle(self, delay: float) -> None:
        """Arm only if no deadline is currently pending."""
        if self._deadline is None:
            self.arm(delay)

    def cancel(self) -> None:
        """Cancel any pending deadline (lazy: the timer stays queued and
        no-ops when it fires)."""
        self._deadline = None

    def _on_timer(self) -> None:
        self._next_fire = None
        deadline = self._deadline
        if deadline is None:
            return  # cancelled since this timer was scheduled
        if deadline > self.env.now:
            # Re-armed to a later deadline: this timer covers it by
            # rescheduling once, instead of one timer per arm().
            self._next_fire = deadline
            self.env.call_at(deadline, self._on_timer)
            return
        self._deadline = None
        self._callback()
