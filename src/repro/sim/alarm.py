"""Cancellable one-shot alarms.

Timer-driven behaviour (buffer flush deadlines, retransmission timeouts,
acknowledgement delays) needs a primitive that can be armed, re-armed and
cancelled cheaply without leaking processes.  ``Alarm`` wraps the pattern:
one alarm object, at most one pending callback, cancel/re-arm at will.

Cancellation and re-arming are *lazy*: the alarm never removes anything
from the calendar; it marks its pending timer record dead in place (an
O(1) pointer write — the kernel's drain loop skips dead records at their
slot without running any alarm code).  Unlike the naive one-timer-per-arm
scheme, re-arming reuses a pending timer whenever that timer fires at or
before the new deadline — so a hot alarm that is re-armed on every packet
(the RTO pattern) keeps a single calendar entry instead of piling up one
dead Timeout + closure per packet.  Timers go through the kernel's pooled
cancellable lane (:meth:`~repro.sim.kernel.Environment.call_at_cancellable`),
so no Event objects are allocated at all, and fired records are recycled.

The reuse algorithm deliberately creates calendar entries at exactly the
same simulated moments the pre-timer-wheel implementation did (DESIGN.md
section 13 gives the case analysis), which is what keeps golden traces
bit-identical across the kernel change.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim.kernel import Environment

__all__ = ["Alarm"]


class Alarm:
    """A re-armable one-shot timer firing a callback at a deadline."""

    __slots__ = ("env", "_callback", "_deadline", "_next_fire", "_entry", "_gen")

    def __init__(self, env: Environment, callback: Callable[[], None]) -> None:
        self.env = env
        self._callback = callback
        #: When the callback should run, or None when disarmed.
        self._deadline: Optional[float] = None
        #: Earliest pending calendar timer known to cover the deadline, or
        #: None if no timer is known to be pending.  Invariant: whenever
        #: ``_deadline`` is set, some *live* pending timer fires at or
        #: before it.
        self._next_fire: Optional[float] = None
        #: The most recently created calendar record and its generation,
        #: so cancel() can kill it in place and arm() can revive it.  The
        #: generation check detects records that fired and were reissued
        #: by the kernel's free list to an unrelated timer.
        self._entry = None
        self._gen = 0

    @property
    def armed(self) -> bool:
        return self._deadline is not None

    @property
    def deadline(self) -> Optional[float]:
        return self._deadline

    def arm(self, delay: float) -> None:
        """(Re-)arm the alarm to fire *delay* from now, replacing any
        earlier deadline."""
        if delay < 0:
            raise ValueError("alarm delay must be >= 0, got %r" % (delay,))
        env = self.env
        deadline = env._now + delay
        self._deadline = deadline
        next_fire = self._next_fire
        if next_fire is None or next_fire > deadline:
            self._next_fire = deadline
            entry = env.call_at_cancellable(deadline, self._on_timer)
            self._entry = entry
            self._gen = entry.gen
            return
        # A pending timer already fires at or before the new deadline.
        entry = self._entry
        if entry is not None and entry.gen == self._gen:
            if entry.fn is None:
                # cancel() killed it in place; revive the same slot.
                entry.fn = self._on_timer
            return
        # The tracked record was consumed while cancelled (its slot came
        # up and was skipped), so nothing is actually pending: _next_fire
        # is stale.  Schedule fresh — the old implementation reached this
        # same state with _next_fire already cleared by the no-op fire.
        self._next_fire = deadline
        entry = env.call_at_cancellable(deadline, self._on_timer)
        self._entry = entry
        self._gen = entry.gen

    def arm_if_idle(self, delay: float) -> None:
        """Arm only if no deadline is currently pending."""
        if self._deadline is None:
            self.arm(delay)

    def cancel(self) -> None:
        """Cancel any pending deadline.

        Lazy: the timer record stays queued, but its function slot is
        nulled (generation-checked, in case the record already fired and
        was reissued) so the kernel skips it in O(1) at its slot.
        """
        self._deadline = None
        entry = self._entry
        if entry is not None and entry.gen == self._gen:
            entry.fn = None

    def _on_timer(self) -> None:
        self._next_fire = None
        deadline = self._deadline
        if deadline is None:
            return  # disarmed since this timer was scheduled
        env = self.env
        if deadline > env._now:
            # Re-armed to a later deadline: this timer covers it by
            # rescheduling once, instead of one timer per arm().
            self._next_fire = deadline
            entry = env.call_at_cancellable(deadline, self._on_timer)
            self._entry = entry
            self._gen = entry.gen
            return
        self._deadline = None
        self._callback()
