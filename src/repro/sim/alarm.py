"""Cancellable one-shot alarms.

Timer-driven behaviour (buffer flush deadlines, retransmission timeouts,
acknowledgement delays) needs a primitive that can be armed, re-armed and
cancelled cheaply without leaking processes.  ``Alarm`` wraps the pattern:
one alarm object, at most one pending callback, cancel/re-arm at will.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim.kernel import Environment

__all__ = ["Alarm"]


class Alarm:
    """A re-armable one-shot timer firing a callback at a deadline."""

    def __init__(self, env: Environment, callback: Callable[[], None]) -> None:
        self.env = env
        self._callback = callback
        self._generation = 0
        self._deadline: Optional[float] = None

    @property
    def armed(self) -> bool:
        return self._deadline is not None

    @property
    def deadline(self) -> Optional[float]:
        return self._deadline

    def arm(self, delay: float) -> None:
        """(Re-)arm the alarm to fire *delay* from now, replacing any
        earlier deadline."""
        if delay < 0:
            raise ValueError("alarm delay must be >= 0, got %r" % (delay,))
        self._generation += 1
        self._deadline = self.env.now + delay
        generation = self._generation
        timer = self.env.timeout(delay)

        def fire(_event) -> None:
            if generation != self._generation:
                return  # cancelled or re-armed since
            self._deadline = None
            self._callback()

        timer.callbacks.append(fire)

    def arm_if_idle(self, delay: float) -> None:
        """Arm only if no deadline is currently pending."""
        if self._deadline is None:
            self.arm(delay)

    def cancel(self) -> None:
        """Cancel any pending deadline."""
        self._generation += 1
        self._deadline = None
