"""Deterministic random-number streams for simulations.

Every stochastic model component (network jitter, fault injection, workload
generators) draws from its own named stream so that adding a new component
never perturbs the draws of existing ones.  All streams derive from a single
root seed, keeping whole experiments reproducible from one integer.

The chaos-campaign engine (:mod:`repro.chaos`) leans on this hard: fault
*schedule* generation, link-level fault draws, network jitter and workload
randomness all live in distinct named streams, so a campaign seed fully
determines a run and injecting one more fault never reshuffles the
workload's own draws.
"""

from __future__ import annotations

import random
from typing import Dict

__all__ = ["RngRegistry", "derive_seed"]

_MASK = 0xFFFFFFFFFFFFFFFF


def derive_seed(seed: int, name: str) -> int:
    """Derive a per-stream seed from a root *seed* and a stream *name*.

    Platform-stable by construction (``hash()`` is salted per-process, so
    it must not be used): a simple polynomial roll over the name's code
    points, folded into 64 bits.  Identical ``(seed, name)`` pairs yield
    identical derived seeds on every platform and Python version.
    """
    derived = seed & _MASK
    for ch in name:
        derived = (derived * 1000003 + ord(ch)) & _MASK
    return derived


class RngRegistry:
    """A family of independent, named ``random.Random`` streams."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._streams: Dict[str, random.Random] = {}

    @property
    def seed(self) -> int:
        return self._seed

    def stream(self, name: str) -> random.Random:
        """Return the stream for *name*, creating it deterministically."""
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(derive_seed(self._seed, name))
            self._streams[name] = stream
        return stream

    def spawn(self, name: str) -> "RngRegistry":
        """A child registry whose root seed derives from *name*.

        Used by campaign runners to give each (seed, workload) pair its own
        fully independent family of streams.
        """
        return RngRegistry(derive_seed(self._seed, name))

    def reset(self) -> None:
        """Forget all streams; they will be re-derived on next use."""
        self._streams.clear()
