"""Deterministic random-number streams for simulations.

Every stochastic model component (network jitter, fault injection, workload
generators) draws from its own named stream so that adding a new component
never perturbs the draws of existing ones.  All streams derive from a single
root seed, keeping whole experiments reproducible from one integer.
"""

from __future__ import annotations

import random
from typing import Dict

__all__ = ["RngRegistry"]


class RngRegistry:
    """A family of independent, named ``random.Random`` streams."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._streams: Dict[str, random.Random] = {}

    @property
    def seed(self) -> int:
        return self._seed

    def stream(self, name: str) -> random.Random:
        """Return the stream for *name*, creating it deterministically."""
        stream = self._streams.get(name)
        if stream is None:
            # Derive a per-stream seed from the root seed and the name in a
            # platform-stable way (hash() is salted per-process, so avoid it).
            derived = self._seed
            for ch in name:
                derived = (derived * 1000003 + ord(ch)) & 0xFFFFFFFFFFFFFFFF
            stream = random.Random(derived)
            self._streams[name] = stream
        return stream

    def reset(self) -> None:
        """Forget all streams; they will be re-derived on next use."""
        self._streams.clear()
