"""Pretty-printer for mini-Argus modules.

Produces source text that re-parses to a structurally identical module —
the classic front-end round-trip property, verified in
``tests/lang/test_pretty.py``.  Useful for debugging generated programs
and for error reporting.
"""

from __future__ import annotations

from typing import List

from repro.lang import ast as A
from repro.types.signatures import (
    ArrayOf,
    HandlerType,
    PromiseType,
    RecordOf,
    Type,
)

__all__ = ["pretty_module", "pretty_stmt", "pretty_expr", "pretty_type"]

_INDENT = "  "


def pretty_type(tp: Type) -> str:
    """The source spelling of a type (matches the parser's grammar)."""
    if isinstance(tp, A.QueueType):
        return "queue[%s]" % pretty_type(tp.element)
    if isinstance(tp, ArrayOf):
        return "array[%s]" % pretty_type(tp.element)
    if isinstance(tp, RecordOf):
        inner = ", ".join("%s: %s" % (f, pretty_type(t)) for f, t in tp.fields)
        return "record[%s]" % inner
    if isinstance(tp, HandlerType):
        return "handlertype %s" % _signature_suffix(tp.args, tp.returns, tp.signals)
    if isinstance(tp, PromiseType):
        suffix = _signature_suffix(None, tp.returns, tp.signals)
        return ("promise " + suffix).strip()
    return tp.name()


def _signature_suffix(args, returns, signals) -> str:
    parts: List[str] = []
    if args is not None:
        parts.append("(%s)" % ", ".join(pretty_type(t) for t in args))
    if returns:
        parts.append("returns (%s)" % ", ".join(pretty_type(t) for t in returns))
    if signals:
        rendered = []
        for name, types in signals.items():
            if types:
                rendered.append("%s(%s)" % (name, ", ".join(pretty_type(t) for t in types)))
            else:
                rendered.append(name)
        parts.append("signals (%s)" % ", ".join(rendered))
    return " ".join(parts)


def _params(params) -> str:
    return "(%s)" % ", ".join("%s: %s" % (n, pretty_type(t)) for n, t in params)


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------
def pretty_expr(expr: A.Expr) -> str:
    """The source spelling of one expression (parenthesized binops)."""
    if isinstance(expr, A.IntLit):
        return str(expr.value)
    if isinstance(expr, A.RealLit):
        text = repr(expr.value)
        return text if ("." in text or "e" in text or "E" in text) else text + ".0"
    if isinstance(expr, A.BoolLit):
        return "true" if expr.value else "false"
    if isinstance(expr, A.StringLit):
        escaped = (
            expr.value.replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n")
            .replace("\t", "\\t")
        )
        return '"%s"' % escaped
    if isinstance(expr, A.CharLit):
        mapping = {"\n": "\\n", "\t": "\\t", "'": "\\'", "\\": "\\\\"}
        return "'%s'" % mapping.get(expr.value, expr.value)
    if isinstance(expr, A.NilLit):
        return "nil"
    if isinstance(expr, A.VarRef):
        return expr.name
    if isinstance(expr, A.BinOp):
        return "(%s %s %s)" % (pretty_expr(expr.left), expr.op, pretty_expr(expr.right))
    if isinstance(expr, A.UnOp):
        if expr.op == "not":
            return "(not %s)" % pretty_expr(expr.operand)
        return "(-%s)" % pretty_expr(expr.operand)
    if isinstance(expr, A.CallExpr):
        return "%s(%s)" % (
            pretty_expr(expr.callee),
            ", ".join(pretty_expr(a) for a in expr.args),
        )
    if isinstance(expr, A.StreamExpr):
        return "stream %s" % pretty_expr(expr.call)
    if isinstance(expr, A.ForkExpr):
        return "fork %s(%s)" % (
            expr.proc_name,
            ", ".join(pretty_expr(a) for a in expr.args),
        )
    if isinstance(expr, A.TypeOpExpr):
        return "%s$%s(%s)" % (
            pretty_type(expr.on_type),
            expr.op,
            ", ".join(pretty_expr(a) for a in expr.args),
        )
    if isinstance(expr, A.RecordConstruct):
        fields = ", ".join("%s: %s" % (f, pretty_expr(e)) for f, e in expr.fields)
        return "%s${%s}" % (pretty_type(expr.on_type), fields)
    if isinstance(expr, A.ArrayLit):
        return "#[%s]" % ", ".join(pretty_expr(e) for e in expr.elements)
    if isinstance(expr, A.IndexExpr):
        return "%s[%s]" % (pretty_expr(expr.base), pretty_expr(expr.index))
    if isinstance(expr, A.FieldAccess):
        return "%s.%s" % (pretty_expr(expr.base), expr.field)
    raise TypeError("cannot pretty-print %r" % (expr,))


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------
def pretty_stmt(stmt: A._Node, depth: int = 0) -> List[str]:
    """Render one statement as indented source lines."""
    pad = _INDENT * depth
    if isinstance(stmt, A.VarDecl):
        return [
            "%s%s: %s := %s"
            % (pad, stmt.name, pretty_type(stmt.var_type), pretty_expr(stmt.expr))
        ]
    if isinstance(stmt, A.Assign):
        return ["%s%s := %s" % (pad, pretty_expr(stmt.target), pretty_expr(stmt.expr))]
    if isinstance(stmt, A.ExprStmt):
        return [pad + pretty_expr(stmt.expr)]
    if isinstance(stmt, A.StreamStmt):
        return [pad + "stream " + pretty_expr(stmt.call)]
    if isinstance(stmt, A.SendStmt):
        return [pad + "send " + pretty_expr(stmt.call)]
    if isinstance(stmt, A.FlushStmt):
        return [pad + "flush " + pretty_expr(stmt.handler)]
    if isinstance(stmt, A.SynchStmt):
        return [pad + "synch " + pretty_expr(stmt.handler)]
    if isinstance(stmt, A.SignalStmt):
        if stmt.args:
            return [
                "%ssignal %s(%s)"
                % (pad, stmt.name, ", ".join(pretty_expr(a) for a in stmt.args))
            ]
        return [pad + "signal " + stmt.name]
    if isinstance(stmt, A.ReturnStmt):
        return [
            "%sreturn (%s)" % (pad, ", ".join(pretty_expr(e) for e in stmt.exprs))
        ]
    if isinstance(stmt, A.IfStmt):
        lines: List[str] = []
        for index, (cond, block) in enumerate(stmt.arms):
            keyword = "if" if index == 0 else "elseif"
            lines.append("%s%s %s then" % (pad, keyword, pretty_expr(cond)))
            lines.extend(_block(block, depth + 1))
        if stmt.else_block is not None:
            lines.append(pad + "else")
            lines.extend(_block(stmt.else_block, depth + 1))
        lines.append(pad + "end")
        return lines
    if isinstance(stmt, A.WhileStmt):
        lines = ["%swhile %s do" % (pad, pretty_expr(stmt.cond))]
        lines.extend(_block(stmt.body, depth + 1))
        lines.append(pad + "end")
        return lines
    if isinstance(stmt, A.ForStmt):
        lines = [
            "%sfor %s: %s in %s do"
            % (pad, stmt.var, pretty_type(stmt.var_type), pretty_expr(stmt.iterable))
        ]
        lines.extend(_block(stmt.body, depth + 1))
        lines.append(pad + "end")
        return lines
    if isinstance(stmt, A.BeginStmt):
        lines = [pad + "begin"]
        lines.extend(_block(stmt.body, depth + 1))
        lines.append(pad + "end")
        return lines
    if isinstance(stmt, A.CoenterStmt):
        lines = [pad + "coenter"]
        for arm in stmt.arms:
            if arm.is_foreach:
                lines.append(
                    "%sforeach %s: %s in %s"
                    % (pad, arm.var, pretty_type(arm.var_type), pretty_expr(arm.iterable))
                )
            else:
                lines.append(pad + "action")
            lines.extend(_block(arm.body, depth + 1))
        lines.append(pad + "end")
        return lines
    if isinstance(stmt, A.ExceptStmt):
        lines = pretty_stmt(stmt.body, depth)
        lines[-1] = lines[-1] + " except"
        for arm in stmt.arms:
            if arm.is_others:
                head = "others"
            else:
                head = ", ".join(arm.names)
            if arm.params:
                head += _params(arm.params)
            lines.append("%swhen %s:" % (pad + _INDENT, head))
            lines.extend(_block(arm.body, depth + 2))
        lines.append(pad + "end")
        return lines
    raise TypeError("cannot pretty-print statement %r" % (stmt,))


def _block(block: A.Block, depth: int) -> List[str]:
    lines: List[str] = []
    for stmt in block.statements:
        lines.extend(pretty_stmt(stmt, depth))
    return lines


# ----------------------------------------------------------------------
# Declarations
# ----------------------------------------------------------------------
def pretty_module(module: A.Module) -> str:
    """Render a whole module as re-parseable source."""
    lines: List[str] = []
    for name, tp in module.equates.items():
        lines.append("%s = %s" % (name, pretty_type(tp)))
    if module.equates:
        lines.append("")
    for guardian in module.guardians:
        lines.append("guardian %s is" % guardian.name)
        for handler in guardian.handlers:
            suffix = _signature_suffix(
                None, handler.handler_type.returns, handler.handler_type.signals
            )
            head = "%shandler %s %s" % (_INDENT, handler.name, _params(handler.params))
            if suffix:
                head += " " + suffix
            lines.append(head)
            lines.extend(_block(handler.body, 2))
            lines.append(_INDENT + "end")
        lines.append("end")
        lines.append("")
    for proc in module.procs:
        suffix = _signature_suffix(None, proc.returns, proc.signals)
        head = "proc %s %s" % (proc.name, _params(proc.params))
        if suffix:
            head += " " + suffix
        lines.append(head)
        lines.extend(_block(proc.body, 1))
        lines.append("end")
        lines.append("")
    for program in module.programs:
        head = "program %s" % program.name
        if program.params:
            head += " " + _params(program.params)
        lines.append(head)
        lines.extend(_block(program.body, 1))
        lines.append("end")
        lines.append("")
    return "\n".join(lines)
