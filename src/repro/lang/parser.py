"""Recursive-descent parser for the mini-Argus language.

Produces a :class:`~repro.lang.ast.Module`.  Type expressions are resolved
to :mod:`repro.types` descriptors during parsing; equates (type
abbreviations like ``pt = promise returns (real)``) must appear before
their first use, as they do in the paper's figures.

Grammar overview (see tests/lang for worked examples)::

    module     := (equate | guardian | proc | program)*
    equate     := IDENT '=' typeexpr
    guardian   := 'guardian' IDENT 'is' handler* 'end'
    handler    := 'handler' IDENT '(' params? ')' rets? sigs? block 'end'
    proc       := 'proc' IDENT '(' params? ')' rets? sigs? block 'end'
    program    := 'program' IDENT block 'end'
    stmt       := vardecl | assign | exprstmt | 'stream' call | 'send' call
                | 'flush' expr | 'synch' expr | 'signal' IDENT args?
                | 'return' ( '(' exprs ')' )? | if | while | for
                | 'begin' block 'end' | 'coenter' ('action' block)+ 'end'
    any stmt may be followed by 'except' when-arms 'end'
    expr       := precedence-climbing over or/and/cmp/add/mul/unary/postfix
    primary    := literal | IDENT | '(' expr ')' | '#[' exprs? ']'
                | 'stream' postfix-call | 'fork' IDENT '(' args ')'
                | typeexpr '$' IDENT '(' args ')'          (type operation)
                | typeexpr '$' '{' field: expr, ... '}'    (record construct)
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.lang import ast as A
from repro.lang.errors import ParseError, SourcePosition
from repro.lang.lexer import Token, tokenize
from repro.types.signatures import (
    BOOL,
    CHAR,
    INT,
    NULL,
    REAL,
    STRING,
    ArrayOf,
    HandlerType,
    PromiseType,
    RecordOf,
    SignatureError,
    Type,
)

__all__ = ["parse_module", "Parser"]

#: Keywords that may begin a type expression.
_TYPE_KEYWORDS = frozenset(
    ["int", "real", "bool", "char", "string", "null", "array", "record", "handlertype", "promise"]
)

#: Statement-terminating keywords (end of a block).
_BLOCK_ENDERS = frozenset(
    ["end", "when", "else", "elseif", "action", "foreach", "except"]
)

_COMPARISONS = ("=", "~=", "<", "<=", ">", ">=")


def parse_module(source: str) -> A.Module:
    """Parse *source* into a module."""
    return Parser(source).module()


class Parser:
    """Recursive-descent parser over the token stream of one module."""

    def __init__(self, source: str) -> None:
        self._tokens = tokenize(source)
        self._index = 0
        self._equates: Dict[str, Type] = {}

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------
    def _peek(self, ahead: int = 0) -> Token:
        index = min(self._index + ahead, len(self._tokens) - 1)
        return self._tokens[index]

    def _next(self) -> Token:
        token = self._tokens[self._index]
        if token.kind != "eof":
            self._index += 1
        return token

    def _check(self, kind: str, value: Optional[object] = None) -> bool:
        return self._peek().matches(kind, value)

    def _accept(self, kind: str, value: Optional[object] = None) -> Optional[Token]:
        if self._check(kind, value):
            return self._next()
        return None

    def _expect(self, kind: str, value: Optional[object] = None) -> Token:
        token = self._peek()
        if not token.matches(kind, value):
            wanted = value if value is not None else kind
            raise ParseError(
                "expected %r, found %r" % (wanted, token.value if token.value is not None else token.kind),
                token.pos,
            )
        return self._next()

    # ------------------------------------------------------------------
    # Module structure
    # ------------------------------------------------------------------
    def module(self) -> A.Module:
        """Parse the whole token stream as a module."""
        pos = self._peek().pos
        guardians: List[A.GuardianDecl] = []
        procs: List[A.ProcDecl] = []
        programs: List[A.ProgramDecl] = []
        while not self._check("eof"):
            token = self._peek()
            if token.matches("keyword", "guardian"):
                guardians.append(self._guardian())
            elif token.matches("keyword", "proc"):
                procs.append(self._proc())
            elif token.matches("keyword", "program"):
                programs.append(self._program())
            elif token.kind == "ident" and self._peek(1).matches("op", "="):
                self._equate()
            else:
                raise ParseError(
                    "expected a declaration, found %r" % (token.value,), token.pos
                )
        return A.Module(dict(self._equates), guardians, procs, programs, pos)

    def _equate(self) -> None:
        name_token = self._expect("ident")
        self._expect("op", "=")
        resolved = self._typeexpr()
        if name_token.value in self._equates:
            raise ParseError("duplicate equate %r" % (name_token.value,), name_token.pos)
        self._equates[name_token.value] = resolved

    def _guardian(self) -> A.GuardianDecl:
        start = self._expect("keyword", "guardian")
        name = self._expect("ident").value
        self._expect("keyword", "is")
        handlers: List[A.HandlerDecl] = []
        while self._check("keyword", "handler"):
            handlers.append(self._handler())
        self._expect("keyword", "end")
        return A.GuardianDecl(name, handlers, start.pos)

    def _handler(self) -> A.HandlerDecl:
        start = self._expect("keyword", "handler")
        name = self._expect("ident").value
        params = self._params()
        returns = self._returns_clause()
        signals = self._signals_clause()
        body = self._block(_BLOCK_ENDERS)
        self._expect("keyword", "end")
        try:
            handler_type = HandlerType(
                args=[tp for _n, tp in params], returns=returns, signals=signals
            )
        except SignatureError as exc:
            raise ParseError(str(exc), start.pos) from exc
        return A.HandlerDecl(name, params, handler_type, body, start.pos)

    def _proc(self) -> A.ProcDecl:
        start = self._expect("keyword", "proc")
        name = self._expect("ident").value
        params = self._params()
        returns = self._returns_clause()
        signals = self._signals_clause()
        body = self._block(_BLOCK_ENDERS)
        self._expect("keyword", "end")
        return A.ProcDecl(name, params, tuple(returns), signals, body, start.pos)

    def _program(self) -> A.ProgramDecl:
        start = self._expect("keyword", "program")
        name = self._expect("ident").value
        params: List[Tuple[str, Type]] = []
        if self._check("op", "("):
            params = self._params()
        body = self._block(_BLOCK_ENDERS)
        self._expect("keyword", "end")
        return A.ProgramDecl(name, params, body, start.pos)

    def _params(self) -> List[Tuple[str, Type]]:
        self._expect("op", "(")
        params: List[Tuple[str, Type]] = []
        if not self._check("op", ")"):
            while True:
                pname = self._expect("ident").value
                self._expect("op", ":")
                ptype = self._typeexpr()
                params.append((pname, ptype))
                if not self._accept("op", ","):
                    break
        self._expect("op", ")")
        return params

    def _returns_clause(self) -> List[Type]:
        if not self._accept("keyword", "returns"):
            return []
        self._expect("op", "(")
        types = [self._typeexpr()]
        while self._accept("op", ","):
            types.append(self._typeexpr())
        self._expect("op", ")")
        return types

    def _signals_clause(self) -> Dict[str, List[Type]]:
        signals: Dict[str, List[Type]] = {}
        if not self._accept("keyword", "signals"):
            return signals
        self._expect("op", "(")
        while True:
            name_token = self._expect("ident")
            types: List[Type] = []
            if self._accept("op", "("):
                types.append(self._typeexpr())
                while self._accept("op", ","):
                    types.append(self._typeexpr())
                self._expect("op", ")")
            if name_token.value in signals:
                raise ParseError("duplicate signal %r" % (name_token.value,), name_token.pos)
            signals[name_token.value] = types
            if not self._accept("op", ","):
                break
        self._expect("op", ")")
        return signals

    # ------------------------------------------------------------------
    # Types
    # ------------------------------------------------------------------
    def _typeexpr(self) -> Type:
        token = self._peek()
        if token.kind == "keyword":
            word = token.value
            if word == "int":
                self._next()
                return INT
            if word == "real":
                self._next()
                return REAL
            if word == "bool":
                self._next()
                return BOOL
            if word == "char":
                self._next()
                return CHAR
            if word == "string":
                self._next()
                return STRING
            if word == "null":
                self._next()
                return NULL
            if word == "array":
                self._next()
                self._expect("op", "[")
                element = self._typeexpr()
                self._expect("op", "]")
                return ArrayOf(element)
            if word == "record":
                self._next()
                self._expect("op", "[")
                fields: Dict[str, Type] = {}
                while True:
                    fname = self._expect("ident").value
                    self._expect("op", ":")
                    ftype = self._typeexpr()
                    if fname in fields:
                        raise ParseError("duplicate record field %r" % (fname,), token.pos)
                    fields[fname] = ftype
                    if not self._accept("op", ","):
                        break
                self._expect("op", "]")
                return RecordOf(fields)
            if word == "handlertype":
                self._next()
                self._expect("op", "(")
                args: List[Type] = []
                if not self._check("op", ")"):
                    args.append(self._typeexpr())
                    while self._accept("op", ","):
                        args.append(self._typeexpr())
                self._expect("op", ")")
                returns = self._returns_clause()
                signals = self._signals_clause()
                try:
                    return HandlerType(args=args, returns=returns, signals=signals)
                except SignatureError as exc:
                    raise ParseError(str(exc), token.pos) from exc
            if word == "promise":
                self._next()
                returns = self._returns_clause()
                signals = self._signals_clause()
                try:
                    return PromiseType(returns=returns, signals=signals)
                except SignatureError as exc:
                    raise ParseError(str(exc), token.pos) from exc
            raise ParseError("keyword %r does not start a type" % (word,), token.pos)
        if token.kind == "ident":
            # 'queue' is not a keyword so spell it as an identifier type.
            if token.value == "queue" and self._peek(1).matches("op", "["):
                self._next()
                self._expect("op", "[")
                element = self._typeexpr()
                self._expect("op", "]")
                return A.QueueType(element)
            resolved = self._equates.get(token.value)
            if resolved is None:
                raise ParseError("unknown type name %r" % (token.value,), token.pos)
            self._next()
            return resolved
        raise ParseError("expected a type, found %r" % (token.value,), token.pos)

    def _starts_typeexpr(self) -> bool:
        token = self._peek()
        if token.kind == "keyword" and token.value in _TYPE_KEYWORDS:
            return True
        if token.kind == "ident":
            if token.value == "queue" and self._peek(1).matches("op", "["):
                return True
            return token.value in self._equates and self._peek(1).matches("op", "$")
        return False

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def _block(self, enders: frozenset) -> A.Block:
        pos = self._peek().pos
        statements: List[A._Node] = []
        while True:
            token = self._peek()
            if token.kind == "eof":
                break
            if token.kind == "keyword" and token.value in enders:
                break
            statements.append(self._statement())
        return A.Block(statements, pos)

    def _statement(self) -> A._Node:
        stmt = self._bare_statement()
        # An except clause may attach to any statement.
        while self._check("keyword", "except"):
            start = self._next()
            arms = self._when_arms()
            self._expect("keyword", "end")
            stmt = A.ExceptStmt(stmt, arms, start.pos)
        return stmt

    def _when_arms(self) -> List[A.WhenArm]:
        arms: List[A.WhenArm] = []
        while self._check("keyword", "when"):
            start = self._next()
            params: List[Tuple[str, Type]] = []
            if self._accept("keyword", "others"):
                names = None
                if self._check("op", "("):
                    params = self._params()
            else:
                names = [self._expect("ident").value]
                if self._check("op", "("):
                    params = self._params()
                else:
                    while self._accept("op", ","):
                        names.append(self._expect("ident").value)
            self._expect("op", ":")
            body = self._block(_BLOCK_ENDERS)
            arms.append(A.WhenArm(names, params, body, start.pos))
        if not arms:
            raise ParseError("except requires at least one when arm", self._peek().pos)
        return arms

    def _bare_statement(self) -> A._Node:
        token = self._peek()
        # A statement may begin with a type-operation expression, e.g.
        # ``array[pt]$addh(a, x)`` — route those to the expression path
        # before keyword dispatch.
        if token.kind == "keyword" and self._starts_typeexpr():
            expr = self._expr()
            if self._check("op", ":="):
                self._next()
                value = self._expr()
                return A.Assign(expr, value, expr.pos)
            return A.ExprStmt(expr, expr.pos)
        if token.kind == "keyword":
            word = token.value
            if word == "stream":
                start = self._next()
                call = self._call_after_stream(start.pos)
                return A.StreamStmt(call, start.pos)
            if word == "send":
                start = self._next()
                call = self._call_after_stream(start.pos)
                return A.SendStmt(call, start.pos)
            if word == "flush":
                start = self._next()
                return A.FlushStmt(self._postfix_expr(), start.pos)
            if word == "synch":
                start = self._next()
                return A.SynchStmt(self._postfix_expr(), start.pos)
            if word == "signal":
                start = self._next()
                name = self._expect("ident").value
                args: List[A.Expr] = []
                if self._accept("op", "("):
                    if not self._check("op", ")"):
                        args.append(self._expr())
                        while self._accept("op", ","):
                            args.append(self._expr())
                    self._expect("op", ")")
                return A.SignalStmt(name, args, start.pos)
            if word == "return":
                start = self._next()
                exprs: List[A.Expr] = []
                if self._accept("op", "("):
                    if not self._check("op", ")"):
                        exprs.append(self._expr())
                        while self._accept("op", ","):
                            exprs.append(self._expr())
                    self._expect("op", ")")
                return A.ReturnStmt(exprs, start.pos)
            if word == "if":
                return self._if_stmt()
            if word == "while":
                start = self._next()
                cond = self._expr()
                self._expect("keyword", "do")
                body = self._block(_BLOCK_ENDERS)
                self._expect("keyword", "end")
                return A.WhileStmt(cond, body, start.pos)
            if word == "for":
                start = self._next()
                var = self._expect("ident").value
                self._expect("op", ":")
                var_type = self._typeexpr()
                self._expect("keyword", "in")
                iterable = self._expr()
                self._expect("keyword", "do")
                body = self._block(_BLOCK_ENDERS)
                self._expect("keyword", "end")
                return A.ForStmt(var, var_type, iterable, body, start.pos)
            if word == "begin":
                start = self._next()
                body = self._block(_BLOCK_ENDERS)
                self._expect("keyword", "end")
                return A.BeginStmt(body, start.pos)
            if word == "coenter":
                start = self._next()
                arms: List[A.CoenterArm] = []
                while True:
                    if self._check("keyword", "action"):
                        arm_start = self._next()
                        body = self._block(_BLOCK_ENDERS)
                        arms.append(A.CoenterArm(body, arm_start.pos))
                    elif self._check("keyword", "foreach"):
                        arm_start = self._next()
                        var = self._expect("ident").value
                        self._expect("op", ":")
                        var_type = self._typeexpr()
                        self._expect("keyword", "in")
                        iterable = self._expr()
                        body = self._block(_BLOCK_ENDERS)
                        arms.append(
                            A.CoenterArm(
                                body,
                                arm_start.pos,
                                var=var,
                                var_type=var_type,
                                iterable=iterable,
                            )
                        )
                    else:
                        break
                if not arms:
                    raise ParseError(
                        "coenter requires at least one action or foreach arm",
                        start.pos,
                    )
                self._expect("keyword", "end")
                return A.CoenterStmt(arms, start.pos)
            raise ParseError("unexpected keyword %r" % (word,), token.pos)

        # Expression-led statements: vardecl, assignment, expression stmt.
        expr = self._expr()
        if isinstance(expr, A.VarRef) and self._check("op", ":"):
            self._next()
            var_type = self._typeexpr()
            self._expect("op", ":=")
            value = self._expr()
            return A.VarDecl(expr.name, var_type, value, expr.pos)
        if self._check("op", ":="):
            self._next()
            value = self._expr()
            return A.Assign(expr, value, expr.pos)
        return A.ExprStmt(expr, expr.pos)

    def _if_stmt(self) -> A.IfStmt:
        start = self._expect("keyword", "if")
        arms: List[Tuple[A.Expr, A.Block]] = []
        cond = self._expr()
        self._expect("keyword", "then")
        arms.append((cond, self._block(_BLOCK_ENDERS)))
        else_block: Optional[A.Block] = None
        while True:
            if self._accept("keyword", "elseif"):
                cond = self._expr()
                self._expect("keyword", "then")
                arms.append((cond, self._block(_BLOCK_ENDERS)))
                continue
            if self._accept("keyword", "else"):
                else_block = self._block(_BLOCK_ENDERS)
            break
        self._expect("keyword", "end")
        return A.IfStmt(arms, else_block, start.pos)

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def _expr(self) -> A.Expr:
        return self._or_expr()

    def _or_expr(self) -> A.Expr:
        left = self._and_expr()
        while self._check("keyword", "or"):
            op = self._next()
            right = self._and_expr()
            left = A.BinOp("or", left, right, op.pos)
        return left

    def _and_expr(self) -> A.Expr:
        left = self._not_expr()
        while self._check("keyword", "and"):
            op = self._next()
            right = self._not_expr()
            left = A.BinOp("and", left, right, op.pos)
        return left

    def _not_expr(self) -> A.Expr:
        if self._check("keyword", "not"):
            op = self._next()
            return A.UnOp("not", self._not_expr(), op.pos)
        return self._comparison()

    def _comparison(self) -> A.Expr:
        left = self._additive()
        token = self._peek()
        if token.kind == "op" and token.value in _COMPARISONS:
            self._next()
            right = self._additive()
            return A.BinOp(token.value, left, right, token.pos)
        return left

    def _additive(self) -> A.Expr:
        left = self._multiplicative()
        while True:
            token = self._peek()
            if token.kind == "op" and token.value in ("+", "-"):
                self._next()
                right = self._multiplicative()
                left = A.BinOp(token.value, left, right, token.pos)
            else:
                return left

    def _multiplicative(self) -> A.Expr:
        left = self._unary()
        while True:
            token = self._peek()
            if token.kind == "op" and token.value in ("*", "/"):
                self._next()
                right = self._unary()
                left = A.BinOp(token.value, left, right, token.pos)
            else:
                return left

    def _unary(self) -> A.Expr:
        token = self._peek()
        if token.matches("op", "-"):
            self._next()
            return A.UnOp("-", self._unary(), token.pos)
        return self._postfix_expr()

    def _postfix_expr(self) -> A.Expr:
        expr = self._primary()
        while True:
            token = self._peek()
            if token.matches("op", "("):
                self._next()
                args: List[A.Expr] = []
                if not self._check("op", ")"):
                    args.append(self._expr())
                    while self._accept("op", ","):
                        args.append(self._expr())
                self._expect("op", ")")
                expr = A.CallExpr(expr, args, token.pos)
            elif token.matches("op", "["):
                self._next()
                index = self._expr()
                self._expect("op", "]")
                expr = A.IndexExpr(expr, index, token.pos)
            elif token.matches("op", "."):
                self._next()
                field = self._expect("ident").value
                expr = A.FieldAccess(expr, field, token.pos)
            else:
                return expr

    def _call_after_stream(self, pos: SourcePosition) -> A.CallExpr:
        expr = self._postfix_expr()
        if not isinstance(expr, A.CallExpr):
            raise ParseError("stream/send requires a call", pos)
        return expr

    def _primary(self) -> A.Expr:
        token = self._peek()

        # Type-operation / record-construction: typeexpr '$' ...
        if self._starts_typeexpr():
            type_pos = token.pos
            on_type = self._typeexpr()
            self._expect("op", "$")
            if self._check("op", "{"):
                self._next()
                fields: List[Tuple[str, A.Expr]] = []
                while True:
                    fname = self._expect("ident").value
                    self._expect("op", ":")
                    fields.append((fname, self._expr()))
                    if not self._accept("op", ","):
                        break
                self._expect("op", "}")
                return A.RecordConstruct(on_type, fields, type_pos)
            op_name = self._expect("ident").value
            self._expect("op", "(")
            args: List[A.Expr] = []
            if not self._check("op", ")"):
                args.append(self._expr())
                while self._accept("op", ","):
                    args.append(self._expr())
            self._expect("op", ")")
            return A.TypeOpExpr(on_type, op_name, args, type_pos)

        if token.kind == "int":
            self._next()
            return A.IntLit(token.value, token.pos)
        if token.kind == "real":
            self._next()
            return A.RealLit(token.value, token.pos)
        if token.kind == "string":
            self._next()
            return A.StringLit(token.value, token.pos)
        if token.kind == "char":
            self._next()
            return A.CharLit(token.value, token.pos)
        if token.matches("keyword", "true"):
            self._next()
            return A.BoolLit(True, token.pos)
        if token.matches("keyword", "false"):
            self._next()
            return A.BoolLit(False, token.pos)
        if token.matches("keyword", "nil"):
            self._next()
            return A.NilLit(token.pos)
        if token.matches("keyword", "stream"):
            self._next()
            call = self._call_after_stream(token.pos)
            return A.StreamExpr(call, token.pos)
        if token.matches("keyword", "fork"):
            self._next()
            name = self._expect("ident").value
            self._expect("op", "(")
            args = []
            if not self._check("op", ")"):
                args.append(self._expr())
                while self._accept("op", ","):
                    args.append(self._expr())
            self._expect("op", ")")
            return A.ForkExpr(name, args, token.pos)
        if token.matches("op", "#"):
            self._next()
            self._expect("op", "[")
            elements: List[A.Expr] = []
            if not self._check("op", "]"):
                elements.append(self._expr())
                while self._accept("op", ","):
                    elements.append(self._expr())
            self._expect("op", "]")
            return A.ArrayLit(elements, token.pos)
        if token.matches("op", "("):
            self._next()
            expr = self._expr()
            self._expect("op", ")")
            return expr
        if token.kind == "ident":
            self._next()
            return A.VarRef(token.value, token.pos)
        raise ParseError(
            "expected an expression, found %r" % (token.value if token.value is not None else token.kind),
            token.pos,
        )
