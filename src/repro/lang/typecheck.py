"""Static type checker for the mini-Argus language.

This pass is the reproduction of the paper's central typing claims:

* every handler/port is strongly typed; call arguments are checked against
  the handler type at compile time;
* ``stream h(args)`` has exactly the promise type derived from ``h``'s
  handler type ("Associated with each handler type is a related promise
  type");
* ``pt$claim(x)`` yields the promise's result type, and the ``except
  when`` arms around it may only name exceptions the claimed call can
  actually raise — plus the implicit ``unavailable`` and ``failure`` every
  remote call carries, and ``exception_reply`` for ``synch``;
* ``signal name(args)`` inside a handler/procedure must match a declared
  signal of its signature.

Because all of this is checked statically, the interpreter never needs a
MultiLisp-style "is this value a future?" test — the E7 benchmark point.

Expression nodes are annotated in place: ``inferred_type`` (a
:mod:`repro.types` descriptor), ``resolution`` (interpreter dispatch tag)
and ``resolved`` (payload).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.lang import ast as A
from repro.lang.errors import TypeCheckError
from repro.types.signatures import (
    ANY,
    BOOL,
    CHAR,
    INT,
    NULL,
    REAL,
    STRING,
    AnyType,
    ArrayOf,
    HandlerType,
    IntType,
    PromiseType,
    RealType,
    RecordOf,
    StringType,
    Type,
)

__all__ = ["check_module", "TypeChecker"]

#: Conditions any remote call can produce (implicitly declared everywhere).
_IMPLICIT = ("unavailable", "failure")

#: Builtin procedures: name -> (min_args, max_args or None, result type).
#: Argument checking for these is ad hoc in _check_builtin.
_BUILTINS = frozenset(["make_string", "to_string", "sleep", "trunc", "float"])


def check_module(module: A.Module) -> None:
    """Type-check *module*; raises :class:`TypeCheckError` on violation."""
    TypeChecker(module).check()


class _Env:
    """Lexically scoped variable environment."""

    def __init__(self, parent: Optional["_Env"] = None) -> None:
        self.parent = parent
        self.names: Dict[str, Type] = {}

    def declare(self, name: str, tp: Type, node: A._Node) -> None:
        if name in self.names:
            raise TypeCheckError("redeclaration of %r" % (name,), node.pos)
        self.names[name] = tp

    def lookup(self, name: str) -> Optional[Type]:
        env: Optional[_Env] = self
        while env is not None:
            if name in env.names:
                return env.names[name]
            env = env.parent
        return None

    def child(self) -> "_Env":
        return _Env(self)


class _Routine:
    """What the enclosing routine (handler/proc/program) allows."""

    def __init__(
        self,
        kind: str,  # 'handler' | 'proc' | 'program'
        returns: Tuple[Type, ...],
        signals: Dict[str, Tuple[Type, ...]],
    ) -> None:
        self.kind = kind
        self.returns = returns
        self.signals = signals


def _assignable(target: Type, source: Type) -> bool:
    """May a value of *source* type be used where *target* is expected?"""
    if isinstance(target, AnyType) or isinstance(source, AnyType):
        return True
    if target == source:
        return True
    # Widening: int where real expected (the paper's `1.0 * total` idiom
    # notwithstanding, arithmetic mixing is pervasive in the figures).
    if isinstance(target, RealType) and isinstance(source, IntType):
        return True
    if isinstance(target, ArrayOf) and isinstance(source, ArrayOf):
        # The empty literal #[] has element type `any`.
        if isinstance(source.element, AnyType):
            return True
        return _assignable(target.element, source.element)
    return False


def _is_numeric(tp: Type) -> bool:
    return isinstance(tp, (IntType, RealType))


class TypeChecker:
    """Single-pass static checker; annotates the AST in place."""

    def __init__(self, module: A.Module) -> None:
        self.module = module
        self.handler_types: Dict[str, Dict[str, HandlerType]] = {}
        self.procs: Dict[str, A.ProcDecl] = {}

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------
    def check(self) -> None:
        """Check every declaration; raises TypeCheckError on violation."""
        names: Set[str] = set()
        for guardian in self.module.guardians:
            if guardian.name in names:
                raise TypeCheckError("duplicate name %r" % guardian.name, guardian.pos)
            names.add(guardian.name)
            table: Dict[str, HandlerType] = {}
            for handler in guardian.handlers:
                if handler.name in table:
                    raise TypeCheckError(
                        "duplicate handler %r" % handler.name, handler.pos
                    )
                table[handler.name] = handler.handler_type
            self.handler_types[guardian.name] = table
        for proc in self.module.procs:
            if proc.name in names or proc.name in self.procs:
                raise TypeCheckError("duplicate name %r" % proc.name, proc.pos)
            self.procs[proc.name] = proc

        for guardian in self.module.guardians:
            for handler in guardian.handlers:
                self._check_routine(
                    handler.params,
                    handler.body,
                    _Routine(
                        "handler",
                        handler.handler_type.returns,
                        handler.handler_type.signals,
                    ),
                )
        for proc in self.module.procs:
            signals = {name: tuple(types) for name, types in proc.signals.items()}
            self._check_routine(
                proc.params, proc.body, _Routine("proc", proc.returns, signals)
            )
        for program in self.module.programs:
            self._check_routine(
                program.params, program.body, _Routine("program", (), {})
            )

    def _check_routine(
        self,
        params: List[Tuple[str, Type]],
        body: A.Block,
        routine: _Routine,
    ) -> None:
        env = _Env()
        for name, tp in params:
            env.declare(name, tp, body)
        self._check_block(body, env.child(), routine)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def _check_block(self, block: A.Block, env: _Env, routine: _Routine) -> None:
        for stmt in block.statements:
            self._check_stmt(stmt, env, routine)

    def _check_stmt(self, stmt: A._Node, env: _Env, routine: _Routine) -> None:
        if isinstance(stmt, A.VarDecl):
            value_type = self._check_expr(stmt.expr, env)
            if not _assignable(stmt.var_type, value_type):
                raise TypeCheckError(
                    "cannot initialize %s: %s from %s"
                    % (stmt.name, stmt.var_type.name(), value_type.name()),
                    stmt.pos,
                )
            env.declare(stmt.name, stmt.var_type, stmt)
            return
        if isinstance(stmt, A.Assign):
            target_type = self._check_lvalue(stmt.target, env)
            value_type = self._check_expr(stmt.expr, env)
            if not _assignable(target_type, value_type):
                raise TypeCheckError(
                    "cannot assign %s to %s" % (value_type.name(), target_type.name()),
                    stmt.pos,
                )
            return
        if isinstance(stmt, A.ExprStmt):
            self._check_expr(stmt.expr, env)
            return
        if isinstance(stmt, A.StreamStmt):
            self._check_remote_call(stmt.call, env)
            return
        if isinstance(stmt, A.SendStmt):
            self._check_remote_call(stmt.call, env)
            return
        if isinstance(stmt, (A.FlushStmt, A.SynchStmt)):
            handler_type = self._check_expr(stmt.handler, env)
            if not isinstance(handler_type, HandlerType):
                raise TypeCheckError(
                    "flush/synch requires a handler, got %s" % handler_type.name(),
                    stmt.pos,
                )
            return
        if isinstance(stmt, A.SignalStmt):
            if routine.kind == "program":
                raise TypeCheckError(
                    "signal is not allowed in a program (no caller to catch it)",
                    stmt.pos,
                )
            declared = routine.signals.get(stmt.name)
            if declared is None:
                raise TypeCheckError(
                    "signal %r is not declared by this routine" % (stmt.name,),
                    stmt.pos,
                )
            if len(stmt.args) != len(declared):
                raise TypeCheckError(
                    "signal %r takes %d results, %d given"
                    % (stmt.name, len(declared), len(stmt.args)),
                    stmt.pos,
                )
            for arg, expected in zip(stmt.args, declared):
                actual = self._check_expr(arg, env)
                if not _assignable(expected, actual):
                    raise TypeCheckError(
                        "signal %r result: expected %s, got %s"
                        % (stmt.name, expected.name(), actual.name()),
                        arg.pos,
                    )
            return
        if isinstance(stmt, A.ReturnStmt):
            if routine.kind == "program":
                if len(stmt.exprs) > 1:
                    raise TypeCheckError(
                        "a program may return at most one value", stmt.pos
                    )
                for expr in stmt.exprs:
                    self._check_expr(expr, env)
                return
            if len(stmt.exprs) != len(routine.returns):
                raise TypeCheckError(
                    "return has %d values, routine declares %d"
                    % (len(stmt.exprs), len(routine.returns)),
                    stmt.pos,
                )
            for expr, expected in zip(stmt.exprs, routine.returns):
                actual = self._check_expr(expr, env)
                if not _assignable(expected, actual):
                    raise TypeCheckError(
                        "return value: expected %s, got %s"
                        % (expected.name(), actual.name()),
                        expr.pos,
                    )
            return
        if isinstance(stmt, A.IfStmt):
            for cond, block in stmt.arms:
                cond_type = self._check_expr(cond, env)
                if not isinstance(cond_type, type(BOOL)):
                    raise TypeCheckError(
                        "if condition must be bool, got %s" % cond_type.name(),
                        cond.pos,
                    )
                self._check_block(block, env.child(), routine)
            if stmt.else_block is not None:
                self._check_block(stmt.else_block, env.child(), routine)
            return
        if isinstance(stmt, A.WhileStmt):
            cond_type = self._check_expr(stmt.cond, env)
            if not isinstance(cond_type, type(BOOL)):
                raise TypeCheckError(
                    "while condition must be bool, got %s" % cond_type.name(),
                    stmt.cond.pos,
                )
            self._check_block(stmt.body, env.child(), routine)
            return
        if isinstance(stmt, A.ForStmt):
            iterable_type = self._check_expr(stmt.iterable, env)
            if not isinstance(iterable_type, ArrayOf):
                raise TypeCheckError(
                    "for iterates arrays, got %s" % iterable_type.name(),
                    stmt.iterable.pos,
                )
            if not _assignable(stmt.var_type, iterable_type.element):
                raise TypeCheckError(
                    "loop variable %s: %s cannot hold elements of %s"
                    % (stmt.var, stmt.var_type.name(), iterable_type.name()),
                    stmt.pos,
                )
            body_env = env.child()
            body_env.declare(stmt.var, stmt.var_type, stmt)
            self._check_block(stmt.body, body_env, routine)
            return
        if isinstance(stmt, A.BeginStmt):
            self._check_block(stmt.body, env.child(), routine)
            return
        if isinstance(stmt, A.CoenterStmt):
            for arm in stmt.arms:
                arm_env = env.child()
                if arm.is_foreach:
                    iterable_type = self._check_expr(arm.iterable, env)
                    if not isinstance(iterable_type, ArrayOf):
                        raise TypeCheckError(
                            "foreach iterates arrays, got %s"
                            % iterable_type.name(),
                            arm.iterable.pos,
                        )
                    if not _assignable(arm.var_type, iterable_type.element):
                        raise TypeCheckError(
                            "foreach variable %s: %s cannot hold elements of %s"
                            % (arm.var, arm.var_type.name(), iterable_type.name()),
                            arm.pos,
                        )
                    arm_env.declare(arm.var, arm.var_type, arm)
                self._check_block(arm.body, arm_env, routine)
            return
        if isinstance(stmt, A.ExceptStmt):
            self._check_stmt(stmt.body, env, routine)
            possible = self._possible_conditions(stmt.body)
            for arm in stmt.arms:
                self._check_when_arm(arm, possible, env, routine)
            return
        raise TypeCheckError("unknown statement %r" % (stmt,), stmt.pos)

    def _check_when_arm(
        self,
        arm: A.WhenArm,
        possible: Dict[str, Tuple[Type, ...]],
        env: _Env,
        routine: _Routine,
    ) -> None:
        arm_env = env.child()
        if arm.is_others:
            # others may bind at most one string (the reason text).
            if len(arm.params) > 1:
                raise TypeCheckError("others binds at most one value", arm.pos)
            for name, tp in arm.params:
                if not isinstance(tp, StringType):
                    raise TypeCheckError(
                        "others binds a string reason, not %s" % tp.name(), arm.pos
                    )
                arm_env.declare(name, tp, arm)
        else:
            for name in arm.names:
                if name in _IMPLICIT or name == "exception_reply":
                    declared: Tuple[Type, ...] = (STRING,) if name in _IMPLICIT else ()
                elif name in possible:
                    declared = possible[name]
                else:
                    raise TypeCheckError(
                        "no call in this statement can signal %r (it would be "
                        "dead code; promises are strongly typed)" % (name,),
                        arm.pos,
                    )
                if arm.params:
                    if len(arm.params) != len(declared):
                        raise TypeCheckError(
                            "when %s binds %d values but the exception has %d"
                            % (name, len(arm.params), len(declared)),
                            arm.pos,
                        )
                    for (pname, ptp), expected in zip(arm.params, declared):
                        if not _assignable(ptp, expected):
                            raise TypeCheckError(
                                "when %s: parameter %s has type %s, exception "
                                "carries %s"
                                % (name, pname, ptp.name(), expected.name()),
                                arm.pos,
                            )
            for pname, ptp in arm.params:
                arm_env.declare(pname, ptp, arm)
        self._check_block(arm.body, arm_env, routine)

    # ------------------------------------------------------------------
    # Exception-condition analysis for except arms
    # ------------------------------------------------------------------
    def _possible_conditions(self, node: A._Node) -> Dict[str, Tuple[Type, ...]]:
        """Every user condition some call under *node* can raise."""
        found: Dict[str, Tuple[Type, ...]] = {}

        def merge(signals: Dict[str, Tuple[Type, ...]], pos) -> None:
            for name, types in signals.items():
                existing = found.get(name)
                types = tuple(types)
                if existing is not None and existing != types:
                    raise TypeCheckError(
                        "condition %r is raised with differing result types "
                        "in one statement; disambiguate the except arms" % (name,),
                        pos,
                    )
                found[name] = types

        def walk(node: A._Node) -> None:
            if isinstance(node, A.CallExpr):
                callee_type = getattr(node.callee, "inferred_type", None)
                if isinstance(callee_type, HandlerType):
                    merge(callee_type.signals, node.pos)
            if isinstance(node, A.TypeOpExpr) and node.op == "claim":
                if isinstance(node.on_type, PromiseType):
                    merge(node.on_type.signals, node.pos)
            if isinstance(node, A.ForkExpr):
                proc = self.procs.get(node.proc_name)
                if proc is not None:
                    # fork itself raises nothing; claiming its promise does.
                    pass
            if isinstance(node, A.SynchStmt):
                merge({"exception_reply": ()}, node.pos)
            for child in _children(node):
                walk(child)

        walk(node)
        return found

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def _check_lvalue(self, expr: A.Expr, env: _Env) -> Type:
        if isinstance(expr, A.VarRef):
            tp = env.lookup(expr.name)
            if tp is None:
                raise TypeCheckError("assignment to undeclared %r" % expr.name, expr.pos)
            expr.inferred_type = tp
            expr.resolution = "var"
            return tp
        if isinstance(expr, (A.IndexExpr, A.FieldAccess)):
            return self._check_expr(expr, env)
        raise TypeCheckError("invalid assignment target", expr.pos)

    def _check_expr(self, expr: A.Expr, env: _Env) -> Type:
        tp = self._infer(expr, env)
        expr.inferred_type = tp
        return tp

    def _infer(self, expr: A.Expr, env: _Env) -> Type:
        if isinstance(expr, A.IntLit):
            return INT
        if isinstance(expr, A.RealLit):
            return REAL
        if isinstance(expr, A.BoolLit):
            return BOOL
        if isinstance(expr, A.StringLit):
            return STRING
        if isinstance(expr, A.CharLit):
            return CHAR
        if isinstance(expr, A.NilLit):
            return NULL
        if isinstance(expr, A.VarRef):
            tp = env.lookup(expr.name)
            if tp is not None:
                expr.resolution = "var"
                return tp
            if expr.name in self.handler_types:
                raise TypeCheckError(
                    "guardian %r is not a value; use %s.<handler>"
                    % (expr.name, expr.name),
                    expr.pos,
                )
            if expr.name in self.procs or expr.name in _BUILTINS:
                raise TypeCheckError(
                    "%r must be called, not referenced" % (expr.name,), expr.pos
                )
            raise TypeCheckError("undeclared identifier %r" % (expr.name,), expr.pos)
        if isinstance(expr, A.FieldAccess):
            if isinstance(expr.base, A.VarRef) and env.lookup(expr.base.name) is None:
                guardian_table = self.handler_types.get(expr.base.name)
                if guardian_table is not None:
                    handler_type = guardian_table.get(expr.field)
                    if handler_type is None:
                        raise TypeCheckError(
                            "guardian %r has no handler %r"
                            % (expr.base.name, expr.field),
                            expr.pos,
                        )
                    expr.resolution = "handler"
                    expr.resolved = (expr.base.name, expr.field, handler_type)
                    return handler_type
            base_type = self._check_expr(expr.base, env)
            if not isinstance(base_type, RecordOf):
                raise TypeCheckError(
                    "field access on non-record %s" % base_type.name(), expr.pos
                )
            fields = base_type.field_dict()
            if expr.field not in fields:
                raise TypeCheckError(
                    "record %s has no field %r" % (base_type.name(), expr.field),
                    expr.pos,
                )
            expr.resolution = "field"
            return fields[expr.field]
        if isinstance(expr, A.IndexExpr):
            base_type = self._check_expr(expr.base, env)
            if not isinstance(base_type, ArrayOf):
                raise TypeCheckError(
                    "indexing non-array %s" % base_type.name(), expr.pos
                )
            index_type = self._check_expr(expr.index, env)
            if not isinstance(index_type, IntType):
                raise TypeCheckError(
                    "array index must be int, got %s" % index_type.name(),
                    expr.index.pos,
                )
            return base_type.element
        if isinstance(expr, A.ArrayLit):
            if not expr.elements:
                return ArrayOf(ANY)
            element_type = self._check_expr(expr.elements[0], env)
            for element in expr.elements[1:]:
                other = self._check_expr(element, env)
                if _assignable(element_type, other):
                    continue
                if _assignable(other, element_type):
                    element_type = other
                    continue
                raise TypeCheckError(
                    "array literal mixes %s and %s"
                    % (element_type.name(), other.name()),
                    element.pos,
                )
            return ArrayOf(element_type)
        if isinstance(expr, A.BinOp):
            return self._infer_binop(expr, env)
        if isinstance(expr, A.UnOp):
            operand_type = self._check_expr(expr.operand, env)
            if expr.op == "-":
                if not _is_numeric(operand_type):
                    raise TypeCheckError(
                        "unary - on %s" % operand_type.name(), expr.pos
                    )
                return operand_type
            if expr.op == "not":
                if not isinstance(operand_type, type(BOOL)):
                    raise TypeCheckError(
                        "not on %s" % operand_type.name(), expr.pos
                    )
                return BOOL
            raise TypeCheckError("unknown unary op %r" % expr.op, expr.pos)
        if isinstance(expr, A.CallExpr):
            return self._infer_call(expr, env)
        if isinstance(expr, A.StreamExpr):
            handler_type = self._check_remote_call(expr.call, env)
            return handler_type.promise_type()
        if isinstance(expr, A.ForkExpr):
            proc = self.procs.get(expr.proc_name)
            if proc is None:
                raise TypeCheckError(
                    "fork of unknown procedure %r" % (expr.proc_name,), expr.pos
                )
            self._check_arg_list(expr.args, [tp for _n, tp in proc.params], env, expr)
            expr.resolution = "fork"
            expr.resolved = proc
            return proc.promise_type()
        if isinstance(expr, A.TypeOpExpr):
            return self._infer_typeop(expr, env)
        if isinstance(expr, A.RecordConstruct):
            if not isinstance(expr.on_type, RecordOf):
                raise TypeCheckError(
                    "record construction on non-record type %s"
                    % expr.on_type.name(),
                    expr.pos,
                )
            declared = expr.on_type.field_dict()
            given = [fname for fname, _ in expr.fields]
            if sorted(given) != sorted(declared.keys()) or len(given) != len(set(given)):
                raise TypeCheckError(
                    "record fields %r do not match %r"
                    % (sorted(given), sorted(declared.keys())),
                    expr.pos,
                )
            for fname, fexpr in expr.fields:
                actual = self._check_expr(fexpr, env)
                if not _assignable(declared[fname], actual):
                    raise TypeCheckError(
                        "field %s: expected %s, got %s"
                        % (fname, declared[fname].name(), actual.name()),
                        fexpr.pos,
                    )
            return expr.on_type
        raise TypeCheckError("unknown expression %r" % (expr,), expr.pos)

    def _infer_binop(self, expr: A.BinOp, env: _Env) -> Type:
        left = self._check_expr(expr.left, env)
        right = self._check_expr(expr.right, env)
        op = expr.op
        if op in ("and", "or"):
            if not isinstance(left, type(BOOL)) or not isinstance(right, type(BOOL)):
                raise TypeCheckError("%s requires bools" % op, expr.pos)
            return BOOL
        if op in ("+", "-", "*", "/"):
            if op == "+" and isinstance(left, StringType) and isinstance(right, StringType):
                return STRING
            if not _is_numeric(left) or not _is_numeric(right):
                raise TypeCheckError(
                    "%s on %s and %s" % (op, left.name(), right.name()), expr.pos
                )
            if op == "/" or isinstance(left, RealType) or isinstance(right, RealType):
                return REAL
            return INT
        if op in _comparison_ops():
            if _is_numeric(left) and _is_numeric(right):
                return BOOL
            if left == right and op in ("=", "~="):
                return BOOL
            if left == right and isinstance(left, (StringType, type(CHAR))):
                return BOOL
            raise TypeCheckError(
                "cannot compare %s and %s with %s" % (left.name(), right.name(), op),
                expr.pos,
            )
        raise TypeCheckError("unknown operator %r" % op, expr.pos)

    def _infer_call(self, expr: A.CallExpr, env: _Env) -> Type:
        callee = expr.callee
        # Builtins and local procedure calls are name-directed.
        if isinstance(callee, A.VarRef) and env.lookup(callee.name) is None:
            if callee.name in _BUILTINS:
                expr.resolution = "builtin"
                return self._check_builtin(expr, env)
            proc = self.procs.get(callee.name)
            if proc is not None:
                self._check_arg_list(
                    expr.args, [tp for _n, tp in proc.params], env, expr
                )
                expr.resolution = "proc"
                expr.resolved = proc
                if len(proc.returns) == 0:
                    return NULL
                if len(proc.returns) == 1:
                    return proc.returns[0]
                raise TypeCheckError(
                    "procedures with multiple results are not callable as "
                    "expressions",
                    expr.pos,
                )
        handler_type = self._check_expr(callee, env)
        if isinstance(handler_type, HandlerType):
            self._check_arg_list(expr.args, list(handler_type.args), env, expr)
            expr.resolution = "rpc"
            if len(handler_type.returns) == 0:
                return NULL
            if len(handler_type.returns) == 1:
                return handler_type.returns[0]
            raise TypeCheckError(
                "handlers with multiple results are not supported in "
                "expression position",
                expr.pos,
            )
        raise TypeCheckError(
            "cannot call a value of type %s" % handler_type.name(), expr.pos
        )

    def _check_remote_call(self, call: A.CallExpr, env: _Env) -> HandlerType:
        handler_type = self._check_expr(call.callee, env)
        if not isinstance(handler_type, HandlerType):
            raise TypeCheckError(
                "stream/send requires a handler, got %s" % handler_type.name(),
                call.pos,
            )
        self._check_arg_list(call.args, list(handler_type.args), env, call)
        call.resolution = "remote"
        call.inferred_type = handler_type
        return handler_type

    def _check_arg_list(
        self,
        args: List[A.Expr],
        expected: List[Type],
        env: _Env,
        where: A._Node,
    ) -> None:
        if len(args) != len(expected):
            raise TypeCheckError(
                "call takes %d arguments, %d given" % (len(expected), len(args)),
                where.pos,
            )
        for arg, expected_type in zip(args, expected):
            actual = self._check_expr(arg, env)
            if not _assignable(expected_type, actual):
                raise TypeCheckError(
                    "argument: expected %s, got %s"
                    % (expected_type.name(), actual.name()),
                    arg.pos,
                )

    def _check_builtin(self, expr: A.CallExpr, env: _Env) -> Type:
        name = expr.callee.name  # type: ignore[attr-defined]
        arg_types = [self._check_expr(arg, env) for arg in expr.args]
        if name == "make_string":
            if not arg_types:
                raise TypeCheckError("make_string needs arguments", expr.pos)
            return STRING
        if name == "to_string":
            if len(arg_types) != 1:
                raise TypeCheckError("to_string takes one argument", expr.pos)
            return STRING
        if name == "sleep":
            if len(arg_types) != 1 or not _is_numeric(arg_types[0]):
                raise TypeCheckError("sleep takes one numeric argument", expr.pos)
            return NULL
        if name == "trunc":
            if len(arg_types) != 1 or not _is_numeric(arg_types[0]):
                raise TypeCheckError("trunc takes one numeric argument", expr.pos)
            return INT
        if name == "float":
            if len(arg_types) != 1 or not isinstance(arg_types[0], IntType):
                raise TypeCheckError("float takes one int argument", expr.pos)
            return REAL
        raise TypeCheckError("unknown builtin %r" % name, expr.pos)

    def _infer_typeop(self, expr: A.TypeOpExpr, env: _Env) -> Type:
        on_type = expr.on_type
        op = expr.op
        if isinstance(on_type, PromiseType):
            if op == "claim":
                self._check_arg_list(expr.args, [on_type], env, expr)
                expr.resolution = "claim"
                if len(on_type.returns) == 0:
                    return NULL
                if len(on_type.returns) == 1:
                    return on_type.returns[0]
                raise TypeCheckError(
                    "claim of multi-result promises is not supported in "
                    "expression position",
                    expr.pos,
                )
            if op == "ready":
                self._check_arg_list(expr.args, [on_type], env, expr)
                expr.resolution = "ready"
                return BOOL
            raise TypeCheckError("promise has no operation %r" % op, expr.pos)
        if isinstance(on_type, ArrayOf):
            if op in ("new", "create"):
                self._check_arg_list(expr.args, [], env, expr)
                expr.resolution = "array_new"
                return on_type
            if op == "addh":
                self._check_arg_list(expr.args, [on_type, on_type.element], env, expr)
                expr.resolution = "array_addh"
                return NULL
            if op == "len":
                self._check_arg_list(expr.args, [on_type], env, expr)
                expr.resolution = "array_len"
                return INT
            if op == "elements":
                # The CLU elements iterator (paper: info$elements(grades));
                # our for-loop consumes the array directly.
                self._check_arg_list(expr.args, [on_type], env, expr)
                expr.resolution = "array_elements"
                return on_type
            if op == "indexes":
                # The CLU indexes iterator (paper: averages$indexes(a)).
                self._check_arg_list(expr.args, [on_type], env, expr)
                expr.resolution = "array_indexes"
                return ArrayOf(INT)
            raise TypeCheckError("array has no operation %r" % op, expr.pos)
        if isinstance(on_type, A.QueueType):
            if op in ("new", "create"):
                self._check_arg_list(expr.args, [], env, expr)
                expr.resolution = "queue_new"
                return on_type
            if op == "enq":
                self._check_arg_list(expr.args, [on_type, on_type.element], env, expr)
                expr.resolution = "queue_enq"
                return NULL
            if op == "deq":
                self._check_arg_list(expr.args, [on_type], env, expr)
                expr.resolution = "queue_deq"
                return on_type.element
            raise TypeCheckError("queue has no operation %r" % op, expr.pos)
        raise TypeCheckError(
            "type %s has no operations" % on_type.name(), expr.pos
        )


def _comparison_ops() -> Tuple[str, ...]:
    return ("=", "~=", "<", "<=", ">", ">=")


def _children(node: A._Node):
    """Yield the AST children of *node* (for the condition analysis)."""
    for value in node.__dict__.values():
        if isinstance(value, A._Node):
            yield value
        elif isinstance(value, list):
            for item in value:
                if isinstance(item, A._Node):
                    yield item
                elif isinstance(item, tuple):
                    for sub in item:
                        if isinstance(sub, A._Node):
                            yield sub
