"""The mini-Argus language: lexer, parser, type checker, interpreter.

The paper's contribution is *linguistic*; this package reproduces the
language-level guarantees — promise types derived from handler types,
statically checked claim sites and except arms — as an executable DSL over
the runtime (see DESIGN.md §2).
"""

from repro.lang.errors import LangError, LexError, ParseError, TypeCheckError
from repro.lang.interp import Interpreter, load_module, run_source
from repro.lang.lexer import tokenize
from repro.lang.parser import parse_module
from repro.lang.pretty import pretty_expr, pretty_module, pretty_stmt, pretty_type
from repro.lang.typecheck import check_module

__all__ = [
    "Interpreter",
    "LangError",
    "LexError",
    "ParseError",
    "TypeCheckError",
    "check_module",
    "load_module",
    "parse_module",
    "pretty_expr",
    "pretty_module",
    "pretty_stmt",
    "pretty_type",
    "run_source",
    "tokenize",
]
