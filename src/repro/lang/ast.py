"""Abstract syntax for the mini-Argus language.

Type *expressions* are resolved to :mod:`repro.types` descriptors during
parsing (equates must be declared before use, as in the paper's examples),
so AST nodes carry real :class:`~repro.types.signatures.Type` objects.
The type checker annotates expression nodes in place with
``inferred_type`` and a ``resolution`` tag the interpreter dispatches on.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.lang.errors import SourcePosition
from repro.types.signatures import HandlerType, PromiseType, Type

__all__ = [
    "QueueType",
    "Module",
    "GuardianDecl",
    "HandlerDecl",
    "ProcDecl",
    "ProgramDecl",
    "Block",
    "VarDecl",
    "Assign",
    "ExprStmt",
    "StreamStmt",
    "SendStmt",
    "FlushStmt",
    "SynchStmt",
    "SignalStmt",
    "ReturnStmt",
    "IfStmt",
    "WhileStmt",
    "ForStmt",
    "BeginStmt",
    "CoenterArm",
    "CoenterStmt",
    "ExceptStmt",
    "WhenArm",
    "Expr",
    "IntLit",
    "RealLit",
    "BoolLit",
    "StringLit",
    "CharLit",
    "NilLit",
    "VarRef",
    "BinOp",
    "UnOp",
    "CallExpr",
    "StreamExpr",
    "ForkExpr",
    "TypeOpExpr",
    "RecordConstruct",
    "ArrayLit",
    "IndexExpr",
    "FieldAccess",
]


class QueueType(Type):
    """``queue[pt]`` — the shared promise queue of Figures 4-1/4-2.

    A language-level type only: queues are not transmissible.
    """

    def __init__(self, element: Type) -> None:
        self.element = element

    def _key(self) -> Tuple:
        return (self.element,)

    def name(self) -> str:
        return "queue[%s]" % self.element.name()


class _Node:
    """Base for all AST nodes: carries a source position."""

    def __init__(self, pos: SourcePosition) -> None:
        self.pos = pos

    def __repr__(self) -> str:
        return "<%s at %s>" % (type(self).__name__, self.pos)


# ----------------------------------------------------------------------
# Declarations
# ----------------------------------------------------------------------
class Module(_Node):
    def __init__(
        self,
        equates: Dict[str, Type],
        guardians: List["GuardianDecl"],
        procs: List["ProcDecl"],
        programs: List["ProgramDecl"],
        pos: SourcePosition,
    ) -> None:
        super().__init__(pos)
        self.equates = equates
        self.guardians = guardians
        self.procs = procs
        self.programs = programs

    def guardian(self, name: str) -> "GuardianDecl":
        """The guardian declaration named *name* (KeyError if absent)."""
        for decl in self.guardians:
            if decl.name == name:
                return decl
        raise KeyError(name)

    def program(self, name: str) -> "ProgramDecl":
        """The program declaration named *name* (KeyError if absent)."""
        for decl in self.programs:
            if decl.name == name:
                return decl
        raise KeyError(name)

    def proc(self, name: str) -> "ProcDecl":
        """The procedure declaration named *name* (KeyError if absent)."""
        for decl in self.procs:
            if decl.name == name:
                return decl
        raise KeyError(name)


class GuardianDecl(_Node):
    def __init__(self, name: str, handlers: List["HandlerDecl"], pos: SourcePosition) -> None:
        super().__init__(pos)
        self.name = name
        self.handlers = handlers

    def handler(self, name: str) -> "HandlerDecl":
        """The handler declaration named *name* (KeyError if absent)."""
        for decl in self.handlers:
            if decl.name == name:
                return decl
        raise KeyError(name)


class HandlerDecl(_Node):
    def __init__(
        self,
        name: str,
        params: List[Tuple[str, Type]],
        handler_type: HandlerType,
        body: "Block",
        pos: SourcePosition,
    ) -> None:
        super().__init__(pos)
        self.name = name
        self.params = params
        self.handler_type = handler_type
        self.body = body


class ProcDecl(_Node):
    """A local procedure (usable with ``fork``)."""

    def __init__(
        self,
        name: str,
        params: List[Tuple[str, Type]],
        returns: Tuple[Type, ...],
        signals: Dict[str, Tuple[Type, ...]],
        body: "Block",
        pos: SourcePosition,
    ) -> None:
        super().__init__(pos)
        self.name = name
        self.params = params
        self.returns = returns
        self.signals = signals
        self.body = body

    def promise_type(self) -> PromiseType:
        """The promise type of forks of this procedure (ht -> pt)."""
        return PromiseType(returns=self.returns, signals=self.signals)


class ProgramDecl(_Node):
    """A client program run inside a guardian process."""

    def __init__(
        self,
        name: str,
        params: List[Tuple[str, Type]],
        body: "Block",
        pos: SourcePosition,
    ) -> None:
        super().__init__(pos)
        self.name = name
        self.params = params
        self.body = body


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------
class Block(_Node):
    def __init__(self, statements: List[_Node], pos: SourcePosition) -> None:
        super().__init__(pos)
        self.statements = statements


class VarDecl(_Node):
    def __init__(self, name: str, var_type: Type, expr: "Expr", pos: SourcePosition) -> None:
        super().__init__(pos)
        self.name = name
        self.var_type = var_type
        self.expr = expr


class Assign(_Node):
    def __init__(self, target: "Expr", expr: "Expr", pos: SourcePosition) -> None:
        super().__init__(pos)
        self.target = target
        self.expr = expr


class ExprStmt(_Node):
    def __init__(self, expr: "Expr", pos: SourcePosition) -> None:
        super().__init__(pos)
        self.expr = expr


class StreamStmt(_Node):
    """``stream h(args)`` in statement form: reply decoded and discarded."""

    def __init__(self, call: "CallExpr", pos: SourcePosition) -> None:
        super().__init__(pos)
        self.call = call


class SendStmt(_Node):
    def __init__(self, call: "CallExpr", pos: SourcePosition) -> None:
        super().__init__(pos)
        self.call = call


class FlushStmt(_Node):
    def __init__(self, handler: "Expr", pos: SourcePosition) -> None:
        super().__init__(pos)
        self.handler = handler


class SynchStmt(_Node):
    def __init__(self, handler: "Expr", pos: SourcePosition) -> None:
        super().__init__(pos)
        self.handler = handler


class SignalStmt(_Node):
    def __init__(self, name: str, args: List["Expr"], pos: SourcePosition) -> None:
        super().__init__(pos)
        self.name = name
        self.args = args


class ReturnStmt(_Node):
    def __init__(self, exprs: List["Expr"], pos: SourcePosition) -> None:
        super().__init__(pos)
        self.exprs = exprs


class IfStmt(_Node):
    def __init__(
        self,
        arms: List[Tuple["Expr", Block]],
        else_block: Optional[Block],
        pos: SourcePosition,
    ) -> None:
        super().__init__(pos)
        self.arms = arms
        self.else_block = else_block


class WhileStmt(_Node):
    def __init__(self, cond: "Expr", body: Block, pos: SourcePosition) -> None:
        super().__init__(pos)
        self.cond = cond
        self.body = body


class ForStmt(_Node):
    """``for x: t in expr do ... end`` — iterate an array's elements."""

    def __init__(
        self,
        var: str,
        var_type: Type,
        iterable: "Expr",
        body: Block,
        pos: SourcePosition,
    ) -> None:
        super().__init__(pos)
        self.var = var
        self.var_type = var_type
        self.iterable = iterable
        self.body = body


class BeginStmt(_Node):
    def __init__(self, body: Block, pos: SourcePosition) -> None:
        super().__init__(pos)
        self.body = body


class CoenterArm(_Node):
    """One arm of a coenter: a plain ``action`` or a dynamic ``foreach``.

    ``foreach x: t in expr`` spawns one subprocess per element of the
    array *expr* — "Argus provides such a mechanism, which extends the
    coenter to allow a dynamic number of processes" (§4.3).
    """

    def __init__(
        self,
        body: Block,
        pos: SourcePosition,
        var: Optional[str] = None,
        var_type: Optional[Type] = None,
        iterable: Optional["Expr"] = None,
    ) -> None:
        super().__init__(pos)
        self.body = body
        self.var = var
        self.var_type = var_type
        self.iterable = iterable

    @property
    def is_foreach(self) -> bool:
        return self.var is not None


class CoenterStmt(_Node):
    def __init__(self, arms: List["CoenterArm"], pos: SourcePosition) -> None:
        super().__init__(pos)
        self.arms = arms


class WhenArm(_Node):
    """``when name(params): body`` or ``when others(param): body``."""

    def __init__(
        self,
        names: Optional[List[str]],  # None = others
        params: List[Tuple[str, Type]],
        body: Block,
        pos: SourcePosition,
    ) -> None:
        super().__init__(pos)
        self.names = names
        self.params = params
        self.body = body

    @property
    def is_others(self) -> bool:
        return self.names is None


class ExceptStmt(_Node):
    """A statement with an attached ``except when ... end``."""

    def __init__(self, body: _Node, arms: List[WhenArm], pos: SourcePosition) -> None:
        super().__init__(pos)
        self.body = body
        self.arms = arms


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------
class Expr(_Node):
    def __init__(self, pos: SourcePosition) -> None:
        super().__init__(pos)
        #: Filled in by the type checker.
        self.inferred_type: Optional[Type] = None
        #: Resolution tag for the interpreter (e.g. "builtin", "handler").
        self.resolution: Optional[str] = None
        #: Extra resolution payload (e.g. the handler decl).
        self.resolved: Any = None


class IntLit(Expr):
    def __init__(self, value: int, pos: SourcePosition) -> None:
        super().__init__(pos)
        self.value = value


class RealLit(Expr):
    def __init__(self, value: float, pos: SourcePosition) -> None:
        super().__init__(pos)
        self.value = value


class BoolLit(Expr):
    def __init__(self, value: bool, pos: SourcePosition) -> None:
        super().__init__(pos)
        self.value = value


class StringLit(Expr):
    def __init__(self, value: str, pos: SourcePosition) -> None:
        super().__init__(pos)
        self.value = value


class CharLit(Expr):
    def __init__(self, value: str, pos: SourcePosition) -> None:
        super().__init__(pos)
        self.value = value


class NilLit(Expr):
    pass


class VarRef(Expr):
    def __init__(self, name: str, pos: SourcePosition) -> None:
        super().__init__(pos)
        self.name = name


class BinOp(Expr):
    def __init__(self, op: str, left: Expr, right: Expr, pos: SourcePosition) -> None:
        super().__init__(pos)
        self.op = op
        self.left = left
        self.right = right


class UnOp(Expr):
    def __init__(self, op: str, operand: Expr, pos: SourcePosition) -> None:
        super().__init__(pos)
        self.op = op
        self.operand = operand


class CallExpr(Expr):
    """``callee(args)`` — an RPC, a builtin, or a local call form."""

    def __init__(self, callee: Expr, args: List[Expr], pos: SourcePosition) -> None:
        super().__init__(pos)
        self.callee = callee
        self.args = args


class StreamExpr(Expr):
    """``stream h(args)`` in expression form: evaluates to a promise."""

    def __init__(self, call: CallExpr, pos: SourcePosition) -> None:
        super().__init__(pos)
        self.call = call


class ForkExpr(Expr):
    """``fork foo(args)`` — a promise for a local procedure call."""

    def __init__(self, proc_name: str, args: List[Expr], pos: SourcePosition) -> None:
        super().__init__(pos)
        self.proc_name = proc_name
        self.args = args


class TypeOpExpr(Expr):
    """``T$op(args)`` — CLU-style type operation (``pt$claim(x)``)."""

    def __init__(self, on_type: Type, op: str, args: List[Expr], pos: SourcePosition) -> None:
        super().__init__(pos)
        self.on_type = on_type
        self.op = op
        self.args = args


class RecordConstruct(Expr):
    """``T${f1: e1, f2: e2}`` — record construction."""

    def __init__(
        self,
        on_type: Type,
        fields: List[Tuple[str, Expr]],
        pos: SourcePosition,
    ) -> None:
        super().__init__(pos)
        self.on_type = on_type
        self.fields = fields


class ArrayLit(Expr):
    """``#[e1, e2, ...]`` — array literal (element type inferred)."""

    def __init__(self, elements: List[Expr], pos: SourcePosition) -> None:
        super().__init__(pos)
        self.elements = elements


class IndexExpr(Expr):
    def __init__(self, base: Expr, index: Expr, pos: SourcePosition) -> None:
        super().__init__(pos)
        self.base = base
        self.index = index


class FieldAccess(Expr):
    """``base.field`` — record field, or ``guardian.handler``."""

    def __init__(self, base: Expr, field: str, pos: SourcePosition) -> None:
        super().__init__(pos)
        self.base = base
        self.field = field
