"""Tree-walking interpreter for the mini-Argus language.

Runs type-checked modules on the :class:`~repro.entities.system.ArgusSystem`
runtime: guardians declared in the source become real guardians whose
handler bodies are interpreted; programs run as client processes.  All
blocking operations (RPCs, ``claim``, ``synch``, queue operations,
``sleep``) suspend the underlying simulated process, so interpreted code
interoperates freely with handlers written directly in Python.

Because the type checker has already verified every call, claim and except
arm, the interpreter performs **no** future-tag checks on ordinary values —
the promise-vs-future efficiency argument of §3.3 in action.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.concurrency.promise_queue import PromiseQueue
from repro.core.exceptions import ArgusError, Failure, Signal
from repro.entities.system import ArgusSystem
from repro.lang import ast as A
from repro.lang.errors import LangError
from repro.lang.parser import parse_module
from repro.lang.typecheck import check_module
from repro.types.signatures import PromiseType

__all__ = ["Interpreter", "load_module", "run_source"]


def load_module(source: str) -> A.Module:
    """Parse and type-check *source*."""
    module = parse_module(source)
    check_module(module)
    return module


def run_source(source: str, system: Optional[ArgusSystem] = None, program: str = "main", **system_kwargs):
    """One-shot convenience: build a system, instantiate, run ``main``.

    Returns ``(result, system)``.
    """
    module = load_module(source)
    if system is None:
        system = ArgusSystem(**system_kwargs)
    interp = Interpreter(module, system)
    interp.instantiate()
    process = interp.spawn_program(program)
    result = system.run(until=process)
    return result, system


class _Return(Exception):
    """Non-local exit for ``return`` statements."""

    def __init__(self, values: Tuple[Any, ...]) -> None:
        super().__init__(values)
        self.values = values


class _Scope:
    """Chained variable scope."""

    __slots__ = ("parent", "names")

    def __init__(self, parent: Optional["_Scope"] = None) -> None:
        self.parent = parent
        self.names: Dict[str, Any] = {}

    def declare(self, name: str, value: Any) -> None:
        self.names[name] = value

    def assign(self, name: str, value: Any) -> None:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.names:
                scope.names[name] = value
                return
            scope = scope.parent
        raise KeyError(name)

    def lookup(self, name: str) -> Any:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.names:
                return scope.names[name]
            scope = scope.parent
        raise KeyError(name)

    def child(self) -> "_Scope":
        return _Scope(self)


class _Frame:
    """Per-activity interpreter state (one frame per process)."""

    __slots__ = ("ctx", "handler_cache")

    def __init__(self, ctx: Any) -> None:
        self.ctx = ctx
        self.handler_cache: Dict[Tuple[str, str], Any] = {}

    def handler_ref(self, guardian_name: str, handler_name: str):
        key = (guardian_name, handler_name)
        ref = self.handler_cache.get(key)
        if ref is None:
            ref = self.ctx.lookup(guardian_name, handler_name)
            self.handler_cache[key] = ref
        return ref


def _to_text(value: Any) -> str:
    """``make_string``/``to_string`` formatting."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return "%g" % value
    if value is None:
        return "nil"
    return str(value)


class Interpreter:
    """Executes one module on one system."""

    def __init__(self, module: A.Module, system: ArgusSystem) -> None:
        self.module = module
        self.system = system
        self.guardians: Dict[str, Any] = {}

    # ------------------------------------------------------------------
    # World building
    # ------------------------------------------------------------------
    def instantiate(self) -> Dict[str, Any]:
        """Create a real guardian for every guardian declaration."""
        for decl in self.module.guardians:
            guardian = self.system.create_guardian(decl.name)
            for handler in decl.handlers:
                guardian.create_handler(
                    handler.name, handler.handler_type, self._make_impl(handler)
                )
            self.guardians[decl.name] = guardian
        return self.guardians

    def _make_impl(self, handler: A.HandlerDecl):
        interp = self

        def impl(ctx, *args):
            scope = _Scope()
            for (name, _tp), value in zip(handler.params, args):
                scope.declare(name, value)
            frame = _Frame(ctx)
            try:
                yield from interp._exec_block(handler.body, scope.child(), frame)
            except _Return as ret:
                return _collapse(ret.values)
            return None

        impl.__name__ = "argus_handler_%s" % handler.name
        return impl

    def spawn_program(self, name: str, *args: Any, guardian_name: str = "client"):
        """Spawn program *name* as a process of *guardian_name*."""
        program = self.module.program(name)
        if guardian_name in self.system.guardians:
            client = self.system.guardians[guardian_name]
        else:
            client = self.system.create_guardian(guardian_name)
        interp = self

        def body(ctx):
            scope = _Scope()
            for (pname, _tp), value in zip(program.params, args):
                scope.declare(pname, value)
            frame = _Frame(ctx)
            try:
                yield from interp._exec_block(program.body, scope.child(), frame)
            except _Return as ret:
                return _collapse(ret.values)
            return None

        body.__name__ = "argus_program_%s" % name
        return client.spawn(body)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def _exec_block(self, block: A.Block, scope: _Scope, frame: _Frame):
        for stmt in block.statements:
            yield from self._exec_stmt(stmt, scope, frame)

    def _exec_stmt(self, stmt: A._Node, scope: _Scope, frame: _Frame):
        if isinstance(stmt, A.VarDecl):
            value = yield from self._eval(stmt.expr, scope, frame)
            scope.declare(stmt.name, value)
            return
        if isinstance(stmt, A.Assign):
            value = yield from self._eval(stmt.expr, scope, frame)
            yield from self._assign(stmt.target, value, scope, frame)
            return
        if isinstance(stmt, A.ExprStmt):
            yield from self._eval(stmt.expr, scope, frame)
            return
        if isinstance(stmt, A.StreamStmt):
            ref, args = yield from self._remote_parts(stmt.call, scope, frame)
            ref.stream_statement(*args)
            return
        if isinstance(stmt, A.SendStmt):
            ref, args = yield from self._remote_parts(stmt.call, scope, frame)
            ref.send(*args)
            return
        if isinstance(stmt, A.FlushStmt):
            ref = yield from self._eval(stmt.handler, scope, frame)
            ref.flush()
            return
        if isinstance(stmt, A.SynchStmt):
            ref = yield from self._eval(stmt.handler, scope, frame)
            yield ref.synch()
            return
        if isinstance(stmt, A.SignalStmt):
            values = []
            for arg in stmt.args:
                values.append((yield from self._eval(arg, scope, frame)))
            raise Signal(stmt.name, *values)
        if isinstance(stmt, A.ReturnStmt):
            values = []
            for expr in stmt.exprs:
                values.append((yield from self._eval(expr, scope, frame)))
            raise _Return(tuple(values))
        if isinstance(stmt, A.IfStmt):
            for cond, block in stmt.arms:
                test = yield from self._eval(cond, scope, frame)
                if test:
                    yield from self._exec_block(block, scope.child(), frame)
                    return
            if stmt.else_block is not None:
                yield from self._exec_block(stmt.else_block, scope.child(), frame)
            return
        if isinstance(stmt, A.WhileStmt):
            while True:
                test = yield from self._eval(stmt.cond, scope, frame)
                if not test:
                    return
                yield from self._exec_block(stmt.body, scope.child(), frame)
        if isinstance(stmt, A.ForStmt):
            items = yield from self._eval(stmt.iterable, scope, frame)
            for item in list(items):
                body_scope = scope.child()
                body_scope.declare(stmt.var, item)
                yield from self._exec_block(stmt.body, body_scope, frame)
            return
        if isinstance(stmt, A.BeginStmt):
            yield from self._exec_block(stmt.body, scope.child(), frame)
            return
        if isinstance(stmt, A.CoenterStmt):
            yield from self._exec_coenter(stmt, scope, frame)
            return
        if isinstance(stmt, A.ExceptStmt):
            yield from self._exec_except(stmt, scope, frame)
            return
        raise LangError("unknown statement %r" % (stmt,), stmt.pos)

    def _exec_coenter(self, stmt: A.CoenterStmt, scope: _Scope, frame: _Frame):
        interp = self
        co = frame.ctx.coenter()
        # Queues created in the enclosing scope are guarded automatically.
        for value in _scope_values(scope):
            if isinstance(value, PromiseQueue):
                co.guard_queue(value.raw)

        def make_arm(arm_block: A.Block, bindings=None):
            def arm(actx):
                arm_scope = scope.child()
                for name, value in (bindings or {}).items():
                    arm_scope.declare(name, value)
                arm_frame = _Frame(actx)
                try:
                    yield from interp._exec_block(arm_block, arm_scope, arm_frame)
                except _Return:
                    raise LangError(
                        "return inside a coenter arm", arm_block.pos
                    ) from None

            return arm

        for coenter_arm in stmt.arms:
            if coenter_arm.is_foreach:
                # Dynamic arms: one subprocess per element (§4.3).
                items = yield from self._eval(coenter_arm.iterable, scope, frame)
                for item in list(items):
                    co.arm(
                        make_arm(coenter_arm.body, {coenter_arm.var: item}),
                        label="foreach:%s" % coenter_arm.var,
                    )
            else:
                co.arm(make_arm(coenter_arm.body))
        yield co.run()

    def _exec_except(self, stmt: A.ExceptStmt, scope: _Scope, frame: _Frame):
        try:
            yield from self._exec_stmt(stmt.body, scope, frame)
        except ArgusError as exc:
            arm = self._find_arm(stmt.arms, exc)
            if arm is None:
                raise
            arm_scope = scope.child()
            if arm.is_others:
                if arm.params:
                    arm_scope.declare(arm.params[0][0], str(exc))
            elif arm.params:
                values = exc.exception_args()
                for (pname, _tp), value in zip(arm.params, values):
                    arm_scope.declare(pname, value)
            yield from self._exec_block(arm.body, arm_scope, frame)

    @staticmethod
    def _find_arm(arms: List[A.WhenArm], exc: ArgusError) -> Optional[A.WhenArm]:
        others: Optional[A.WhenArm] = None
        for arm in arms:
            if arm.is_others:
                if others is None:
                    others = arm
            elif exc.condition in arm.names:
                return arm
        return others

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def _assign(self, target: A.Expr, value: Any, scope: _Scope, frame: _Frame):
        if isinstance(target, A.VarRef):
            scope.assign(target.name, value)
            return
        if isinstance(target, A.IndexExpr):
            base = yield from self._eval(target.base, scope, frame)
            index = yield from self._eval(target.index, scope, frame)
            self._bounds(base, index, target)
            base[index] = value
            return
        if isinstance(target, A.FieldAccess):
            base = yield from self._eval(target.base, scope, frame)
            base[target.field] = value
            return
        raise LangError("invalid assignment target", target.pos)

    @staticmethod
    def _bounds(base: List[Any], index: Any, node: A._Node) -> None:
        if not isinstance(index, int) or index < 0 or index >= len(base):
            raise Failure("array index out of bounds: %r" % (index,))

    def _remote_parts(self, call: A.CallExpr, scope: _Scope, frame: _Frame):
        ref = yield from self._eval(call.callee, scope, frame)
        args = []
        for arg in call.args:
            args.append((yield from self._eval(arg, scope, frame)))
        return ref, args

    def _eval(self, expr: A.Expr, scope: _Scope, frame: _Frame):
        if isinstance(expr, (A.IntLit, A.RealLit, A.BoolLit, A.StringLit, A.CharLit)):
            return expr.value
        if isinstance(expr, A.NilLit):
            return None
        if isinstance(expr, A.VarRef):
            return scope.lookup(expr.name)
        if isinstance(expr, A.FieldAccess):
            if expr.resolution == "handler":
                guardian_name, handler_name, _ht = expr.resolved
                return frame.handler_ref(guardian_name, handler_name)
            base = yield from self._eval(expr.base, scope, frame)
            return base[expr.field]
        if isinstance(expr, A.IndexExpr):
            base = yield from self._eval(expr.base, scope, frame)
            index = yield from self._eval(expr.index, scope, frame)
            self._bounds(base, index, expr)
            return base[index]
        if isinstance(expr, A.ArrayLit):
            values = []
            for element in expr.elements:
                values.append((yield from self._eval(element, scope, frame)))
            return values
        if isinstance(expr, A.RecordConstruct):
            record = {}
            for fname, fexpr in expr.fields:
                record[fname] = yield from self._eval(fexpr, scope, frame)
            return record
        if isinstance(expr, A.BinOp):
            return (yield from self._eval_binop(expr, scope, frame))
        if isinstance(expr, A.UnOp):
            operand = yield from self._eval(expr.operand, scope, frame)
            if expr.op == "-":
                return -operand
            return not operand
        if isinstance(expr, A.StreamExpr):
            ref, args = yield from self._remote_parts(expr.call, scope, frame)
            return ref.stream(*args)
        if isinstance(expr, A.ForkExpr):
            proc: A.ProcDecl = expr.resolved
            args = []
            for arg in expr.args:
                args.append((yield from self._eval(arg, scope, frame)))
            return frame.ctx.fork(
                self._make_proc_runner(proc),
                *args,
                ptype=proc.promise_type(),
                label=proc.name,
            )
        if isinstance(expr, A.CallExpr):
            return (yield from self._eval_call(expr, scope, frame))
        if isinstance(expr, A.TypeOpExpr):
            return (yield from self._eval_typeop(expr, scope, frame))
        raise LangError("unknown expression %r" % (expr,), expr.pos)

    def _eval_binop(self, expr: A.BinOp, scope: _Scope, frame: _Frame):
        op = expr.op
        left = yield from self._eval(expr.left, scope, frame)
        if op == "and":
            if not left:
                return False
            return bool((yield from self._eval(expr.right, scope, frame)))
        if op == "or":
            if left:
                return True
            return bool((yield from self._eval(expr.right, scope, frame)))
        right = yield from self._eval(expr.right, scope, frame)
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                raise Failure("division by zero")
            return left / right
        if op == "=":
            return left == right
        if op == "~=":
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
        raise LangError("unknown operator %r" % op, expr.pos)

    def _eval_call(self, expr: A.CallExpr, scope: _Scope, frame: _Frame):
        if expr.resolution == "builtin":
            return (yield from self._eval_builtin(expr, scope, frame))
        if expr.resolution == "proc":
            proc: A.ProcDecl = expr.resolved
            args = []
            for arg in expr.args:
                args.append((yield from self._eval(arg, scope, frame)))
            proc_scope = _Scope()
            for (pname, _tp), value in zip(proc.params, args):
                proc_scope.declare(pname, value)
            try:
                yield from self._exec_block(proc.body, proc_scope.child(), frame)
            except _Return as ret:
                return _collapse(ret.values)
            return None
        # RPC
        ref, args = yield from self._remote_parts(expr, scope, frame)
        result = yield ref.call(*args)
        return result

    def _eval_builtin(self, expr: A.CallExpr, scope: _Scope, frame: _Frame):
        name = expr.callee.name  # type: ignore[attr-defined]
        args = []
        for arg in expr.args:
            args.append((yield from self._eval(arg, scope, frame)))
        if name == "make_string":
            return " ".join(_to_text(value) for value in args)
        if name == "to_string":
            return _to_text(args[0])
        if name == "sleep":
            yield frame.ctx.sleep(float(args[0]))
            return None
        if name == "trunc":
            return int(args[0])
        if name == "float":
            return float(args[0])
        raise LangError("unknown builtin %r" % name, expr.pos)

    def _eval_typeop(self, expr: A.TypeOpExpr, scope: _Scope, frame: _Frame):
        args = []
        for arg in expr.args:
            args.append((yield from self._eval(arg, scope, frame)))
        resolution = expr.resolution
        if resolution == "claim":
            result = yield args[0].claim()
            return result
        if resolution == "ready":
            return args[0].ready()
        if resolution == "array_new":
            return []
        if resolution == "array_addh":
            args[0].append(args[1])
            return None
        if resolution == "array_len":
            return len(args[0])
        if resolution == "array_elements":
            return args[0]
        if resolution == "array_indexes":
            return list(range(len(args[0])))
        if resolution == "queue_new":
            element = expr.on_type.element  # type: ignore[attr-defined]
            return PromiseQueue(
                self.system.env,
                element if isinstance(element, PromiseType) else None,
            )
        if resolution == "queue_enq":
            yield args[0].enq(args[1])
            return None
        if resolution == "queue_deq":
            item = yield args[0].deq()
            return item
        raise LangError("unknown type operation %r" % (expr.op,), expr.pos)

    def _make_proc_runner(self, proc: A.ProcDecl):
        interp = self

        def runner(ctx, *args):
            scope = _Scope()
            for (pname, _tp), value in zip(proc.params, args):
                scope.declare(pname, value)
            frame = _Frame(ctx)
            try:
                yield from interp._exec_block(proc.body, scope.child(), frame)
            except _Return as ret:
                return _collapse(ret.values)
            return None

        runner.__name__ = "argus_proc_%s" % proc.name
        return runner


def _collapse(values: Tuple[Any, ...]) -> Any:
    if len(values) == 0:
        return None
    if len(values) == 1:
        return values[0]
    return values


def _scope_values(scope: _Scope):
    seen = set()
    current: Optional[_Scope] = scope
    while current is not None:
        for name, value in current.names.items():
            if name not in seen:
                seen.add(name)
                yield value
        current = current.parent
