"""Diagnostics for the mini-Argus language."""

from __future__ import annotations

from typing import Optional

__all__ = ["SourcePosition", "LangError", "LexError", "ParseError", "TypeCheckError"]


class SourcePosition:
    """Line/column of a token (1-based)."""

    __slots__ = ("line", "column")

    def __init__(self, line: int, column: int) -> None:
        self.line = line
        self.column = column

    def __repr__(self) -> str:
        return "%d:%d" % (self.line, self.column)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, SourcePosition)
            and self.line == other.line
            and self.column == other.column
        )


class LangError(Exception):
    """Base class for all mini-Argus front-end errors."""

    def __init__(self, message: str, pos: Optional[SourcePosition] = None) -> None:
        if pos is not None:
            message = "%s: %s" % (pos, message)
        super().__init__(message)
        self.pos = pos


class LexError(LangError):
    """Invalid character or malformed literal."""


class ParseError(LangError):
    """Syntax error."""


class TypeCheckError(LangError):
    """Static typing violation."""
