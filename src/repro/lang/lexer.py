"""Lexer for the mini-Argus language.

The surface syntax follows the paper's Argus/CLU fragments: ``%`` starts a
comment to end of line, ``:=`` is assignment, ``$`` is the CLU type-operation
selector (``pt$claim``), and keywords are unreserved-looking lowercase words
(``stream``, ``fork``, ``coenter``, ``except``, ...).
"""

from __future__ import annotations

from typing import List, Optional

from repro.lang.errors import LexError, SourcePosition

__all__ = ["Token", "tokenize", "KEYWORDS"]

KEYWORDS = frozenset(
    [
        "guardian",
        "is",
        "end",
        "handler",
        "proc",
        "program",
        "returns",
        "signals",
        "signal",
        "stream",
        "send",
        "flush",
        "synch",
        "fork",
        "coenter",
        "action",
        "foreach",
        "begin",
        "except",
        "when",
        "others",
        "if",
        "then",
        "elseif",
        "else",
        "while",
        "do",
        "for",
        "in",
        "return",
        "true",
        "false",
        "nil",
        "and",
        "or",
        "not",
        "int",
        "real",
        "bool",
        "char",
        "string",
        "null",
        "array",
        "record",
        "handlertype",
        "promise",
    ]
)

#: Multi-character operators, longest first.
_OPERATORS = [
    ":=",
    "<=",
    ">=",
    "~=",
    "=",
    "<",
    ">",
    "+",
    "-",
    "*",
    "/",
    "(",
    ")",
    "[",
    "]",
    "{",
    "}",
    ",",
    ":",
    ".",
    "$",
    "#",
]


class Token:
    """One lexical token."""

    __slots__ = ("kind", "value", "pos")

    def __init__(self, kind: str, value: object, pos: SourcePosition) -> None:
        self.kind = kind  # 'ident', 'keyword', 'int', 'real', 'string', 'char', 'op', 'eof'
        self.value = value
        self.pos = pos

    def __repr__(self) -> str:
        return "Token(%s, %r, %s)" % (self.kind, self.value, self.pos)

    def matches(self, kind: str, value: Optional[object] = None) -> bool:
        """Whether this token has *kind* (and *value*, when given)."""
        return self.kind == kind and (value is None or self.value == value)


def _is_digit(ch: str) -> bool:
    """ASCII digits only: str.isdigit() accepts Unicode digits (e.g. '²')
    that int()/float() reject."""
    return "0" <= ch <= "9"


def tokenize(source: str) -> List[Token]:
    """Turn *source* into a token list ending with an ``eof`` token."""
    tokens: List[Token] = []
    line = 1
    column = 1
    index = 0
    length = len(source)

    def pos() -> SourcePosition:
        return SourcePosition(line, column)

    def advance(count: int = 1) -> None:
        nonlocal index, line, column
        for _ in range(count):
            if index < length and source[index] == "\n":
                line += 1
                column = 1
            else:
                column += 1
            index += 1

    while index < length:
        ch = source[index]

        # Whitespace
        if ch in " \t\r\n":
            advance()
            continue

        # Comments: % to end of line
        if ch == "%":
            while index < length and source[index] != "\n":
                advance()
            continue

        start = pos()

        # Identifiers / keywords
        if ch.isalpha() or ch == "_":
            begin = index
            while index < length and (source[index].isalnum() or source[index] == "_"):
                advance()
            word = source[begin:index]
            if word in KEYWORDS:
                tokens.append(Token("keyword", word, start))
            else:
                tokens.append(Token("ident", word, start))
            continue

        # Numbers: int or real (digits, optional . digits, optional e exp)
        if _is_digit(ch):
            begin = index
            while index < length and _is_digit(source[index]):
                advance()
            is_real = False
            if (
                index + 1 < length
                and source[index] == "."
                and _is_digit(source[index + 1])
            ):
                is_real = True
                advance()
                while index < length and _is_digit(source[index]):
                    advance()
            if index < length and source[index] in "eE":
                peek = index + 1
                if peek < length and source[peek] in "+-":
                    peek += 1
                if peek < length and _is_digit(source[peek]):
                    is_real = True
                    advance(peek - index)
                    while index < length and _is_digit(source[index]):
                        advance()
            text = source[begin:index]
            if is_real:
                tokens.append(Token("real", float(text), start))
            else:
                tokens.append(Token("int", int(text), start))
            continue

        # String literals: "..."
        if ch == '"':
            advance()
            chars: List[str] = []
            while True:
                if index >= length:
                    raise LexError("unterminated string literal", start)
                current = source[index]
                if current == '"':
                    advance()
                    break
                if current == "\n":
                    raise LexError("newline in string literal", start)
                if current == "\\":
                    advance()
                    if index >= length:
                        raise LexError("dangling escape in string", start)
                    escape = source[index]
                    mapping = {"n": "\n", "t": "\t", '"': '"', "\\": "\\"}
                    if escape not in mapping:
                        raise LexError("unknown escape \\%s" % escape, pos())
                    chars.append(mapping[escape])
                    advance()
                else:
                    chars.append(current)
                    advance()
            tokens.append(Token("string", "".join(chars), start))
            continue

        # Char literals: 'c'
        if ch == "'":
            advance()
            if index >= length:
                raise LexError("unterminated char literal", start)
            current = source[index]
            if current == "\\":
                advance()
                if index >= length:
                    raise LexError("dangling escape in char", start)
                escape = source[index]
                mapping = {"n": "\n", "t": "\t", "'": "'", "\\": "\\"}
                if escape not in mapping:
                    raise LexError("unknown escape \\%s" % escape, pos())
                value = mapping[escape]
                advance()
            else:
                value = current
                advance()
            if index >= length or source[index] != "'":
                raise LexError("unterminated char literal", start)
            advance()
            tokens.append(Token("char", value, start))
            continue

        # Operators
        for op in _OPERATORS:
            if source.startswith(op, index):
                advance(len(op))
                tokens.append(Token("op", op, start))
                break
        else:
            raise LexError("unexpected character %r" % ch, start)

    tokens.append(Token("eof", None, pos()))
    return tokens
