"""repro — a reproduction of Liskov & Shrira, "Promises: Linguistic Support
for Efficient Asynchronous Procedure Calls in Distributed Systems"
(PLDI 1988).

Quickstart::

    from repro import ArgusSystem, HandlerType, INT

    system = ArgusSystem()
    server = system.create_guardian("server")

    def double(ctx, x):
        yield ctx.compute(0.1)
        return x * 2

    server.create_handler("double", HandlerType(args=[INT], returns=[INT]), double)

    client = system.create_guardian("client")

    def main(ctx):
        h = ctx.lookup("server", "double")
        promise = h.stream(21)        # stream call; caller keeps running
        h.flush()
        value = yield promise.claim() # 42
        return value

    process = client.spawn(main)
    print(system.run(until=process))

See README.md for the architecture overview and DESIGN.md for the mapping
from paper sections to packages.
"""

from repro.apps import build_grades_world, build_mailer, build_window_system
from repro.baselines import FutureRuntime, Mailbox, PairingTable
from repro.compose import SKIP, Filter, Pipeline, Stage, run_per_item, run_per_stream, run_phased
from repro.concurrency import (
    Coenter,
    PromiseQueue,
    PromiseTree,
    QueueClosed,
    critical_section,
    fork,
)
from repro.core import (
    ArgusError,
    ExceptionReply,
    Failure,
    Outcome,
    Promise,
    PromiseError,
    PromiseNotReady,
    Signal,
    Unavailable,
)
from repro.encoding import DecodeError, EncodeError, PortDescriptor
from repro.entities import ActivityContext, Agent, ArgusSystem, Guardian, HandlerRef
from repro.lang import Interpreter, load_module, run_source
from repro.net import FaultPlan, Network
from repro.sim import Environment, Event, Process
from repro.streams import StreamConfig, StreamSender
from repro.transactions import Action, AtomicCell, AtomicMap, run_as_action
from repro.types import (
    ANY,
    BOOL,
    CHAR,
    INT,
    NULL,
    REAL,
    STRING,
    ArrayOf,
    HandlerType,
    PortRefType,
    PromiseType,
    RecordOf,
    UserType,
)

__version__ = "1.0.0"

__all__ = [
    "ANY",
    "Action",
    "ActivityContext",
    "Agent",
    "ArgusError",
    "ArgusSystem",
    "ArrayOf",
    "AtomicCell",
    "AtomicMap",
    "BOOL",
    "CHAR",
    "Coenter",
    "DecodeError",
    "EncodeError",
    "Environment",
    "Event",
    "ExceptionReply",
    "Failure",
    "FaultPlan",
    "Filter",
    "FutureRuntime",
    "Guardian",
    "HandlerRef",
    "HandlerType",
    "INT",
    "Interpreter",
    "Mailbox",
    "NULL",
    "Network",
    "Outcome",
    "PairingTable",
    "Pipeline",
    "PortDescriptor",
    "PortRefType",
    "Process",
    "Promise",
    "PromiseError",
    "PromiseNotReady",
    "PromiseQueue",
    "PromiseTree",
    "PromiseType",
    "QueueClosed",
    "REAL",
    "RecordOf",
    "SKIP",
    "STRING",
    "Signal",
    "Stage",
    "StreamConfig",
    "StreamSender",
    "Unavailable",
    "UserType",
    "build_grades_world",
    "build_mailer",
    "build_window_system",
    "critical_section",
    "fork",
    "load_module",
    "run_as_action",
    "run_per_item",
    "run_per_stream",
    "run_phased",
    "run_source",
    "__version__",
]
