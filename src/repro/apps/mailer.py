"""The mailer guardian of §2.1.

"consider a mailer guardian with handlers ``send_mail`` and ``read_mail``,
both in the same group, and suppose it is being used by two clients, C1
and C2."  The section uses it to explain per-stream sequencing: two
clients' calls run concurrently (different streams), while one client's
calls on its own stream run in order.

``read_mail`` signals ``no_such_user`` for unregistered users, which is
also the running example for the Argus ``except when`` form.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.core.exceptions import Signal
from repro.entities.system import ArgusSystem
from repro.types.signatures import STRING, ArrayOf, HandlerType

__all__ = ["SEND_MAIL_TYPE", "READ_MAIL_TYPE", "build_mailer"]

#: ``send_mail: handlertype (string, string) signals (no_such_user)``
SEND_MAIL_TYPE = HandlerType(args=[STRING, STRING], signals={"no_such_user": []})

#: ``read_mail: handlertype (string) returns (array[string])
#:             signals (no_such_user)``
READ_MAIL_TYPE = HandlerType(
    args=[STRING], returns=[ArrayOf(STRING)], signals={"no_such_user": []}
)


def build_mailer(
    system: ArgusSystem,
    name: str = "mailer",
    users: Any = ("alice", "bob"),
    handler_cost: float = 0.1,
):
    """Create the mailer guardian with both handlers in group ``main``.

    Handlers track how many calls ran concurrently (``state['concurrent']``
    / ``state['max_concurrent']``) so tests can verify the §2.1 claims
    about which calls overlap.
    """
    mailer = system.create_guardian(name)
    mailer.state["mail"] = {user: [] for user in users}
    mailer.state["concurrent"] = 0
    mailer.state["max_concurrent"] = 0

    def _enter(ctx) -> None:
        state = ctx.guardian.state
        state["concurrent"] += 1
        state["max_concurrent"] = max(state["max_concurrent"], state["concurrent"])

    def _leave(ctx) -> None:
        ctx.guardian.state["concurrent"] -= 1

    def send_mail(ctx, user: str, message: str):
        _enter(ctx)
        try:
            if handler_cost > 0:
                yield ctx.compute(handler_cost)
            mailbox: Dict[str, List[str]] = ctx.guardian.state["mail"]
            if user not in mailbox:
                raise Signal("no_such_user")
            mailbox[user].append(message)
            return None
        finally:
            _leave(ctx)

    def read_mail(ctx, user: str):
        _enter(ctx)
        try:
            if handler_cost > 0:
                yield ctx.compute(handler_cost)
            mailbox: Dict[str, List[str]] = ctx.guardian.state["mail"]
            if user not in mailbox:
                raise Signal("no_such_user")
            messages, mailbox[user] = mailbox[user], []
            return list(messages)
        finally:
            _leave(ctx)

    mailer.create_handler("send_mail", SEND_MAIL_TYPE, send_mail)
    mailer.create_handler("read_mail", READ_MAIL_TYPE, read_mail)
    return mailer
