"""The paper's running example: the grades database and printer.

Section 3.1 introduces "a guardian that stores information about the
grades of students and provides a handler, ``record_grade``, that records
a new grade for a student and returns an updated average for that student.
In addition, a second guardian provides printing of grades information via
its ``print`` operation."

This module builds that world and provides faithful transcriptions of the
paper's three programs over it:

* :func:`program_fig_3_1` — the two sequential loops of Figure 3-1;
* :func:`program_fig_4_1` — forks plus a shared promise queue (Figure 4-1);
* :func:`program_fig_4_2` — the coenter version (Figure 4-2);
* :func:`program_rpc` — the RPC-only version no figure shows but §5 uses
  as the comparison point.

All four produce identical output; the benchmarks compare their costs.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.concurrency.promise_queue import PromiseQueue
from repro.core.exceptions import Signal
from repro.core.promise import Promise
from repro.entities.system import ArgusSystem
from repro.streams.config import StreamConfig
from repro.types.signatures import INT, REAL, STRING, HandlerType

__all__ = [
    "RECORD_GRADE_TYPE",
    "PRINT_TYPE",
    "GradesWorld",
    "build_grades_world",
    "make_roster",
    "program_fig_3_1",
    "program_fig_4_1",
    "program_fig_4_2",
    "program_rpc",
]

#: ``record_grade: handlertype (string, int) returns (real)``
RECORD_GRADE_TYPE = HandlerType(args=[STRING, INT], returns=[REAL])

#: ``print: handlertype (string)`` — no results, so stream calls to it go
#: as sends.
PRINT_TYPE = HandlerType(args=[STRING])


def make_roster(count: int, grade_of=lambda i: 60 + (i * 7) % 40) -> List[Tuple[str, int]]:
    """A deterministic alphabetical roster of (student, grade) pairs."""
    return [("student%04d" % i, grade_of(i)) for i in range(count)]


class GradesWorld:
    """The built world: system + guardians + observable outputs."""

    def __init__(
        self,
        system: ArgusSystem,
        record_cost: float,
        print_cost: float,
    ) -> None:
        self.system = system
        self.record_cost = record_cost
        self.print_cost = print_cost
        self.db = system.create_guardian("grades_db")
        self.printer = system.create_guardian("printer")
        self.client = system.create_guardian("client")
        self.printed: List[str] = []
        self._install_handlers()

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    def _install_handlers(self) -> None:
        world = self

        def record_grade(ctx, student: str, grade: int):
            """Record a grade; return the student's updated average."""
            if world.record_cost > 0:
                yield ctx.compute(world.record_cost)
            table: Dict[str, List[int]] = ctx.guardian.state.setdefault("grades", {})
            table.setdefault(student, []).append(grade)
            marks = table[student]
            return sum(marks) / len(marks)

        def print_line(ctx, line: str):
            """Print one line (externally visible side effect)."""
            if world.print_cost > 0:
                yield ctx.compute(world.print_cost)
            world.printed.append(line)
            return None

        self.db.create_handler("record_grade", RECORD_GRADE_TYPE, record_grade)
        self.printer.create_handler("print", PRINT_TYPE, print_line)

    def recorded_averages(self) -> Dict[str, float]:
        """Current per-student averages held by the database guardian."""
        table = self.db.state.get("grades", {})
        return {s: sum(m) / len(m) for s, m in table.items()}


def build_grades_world(
    latency: float = 1.0,
    kernel_overhead: float = 0.1,
    record_cost: float = 0.2,
    print_cost: float = 0.1,
    stream_config: Optional[StreamConfig] = None,
    **system_kwargs: Any,
) -> GradesWorld:
    """Construct the three-guardian grades world on a fresh system.

    The default stream config is :meth:`StreamConfig.legacy`: this world
    is the paper-replication scenario (Fig 3-1 / E3) whose wire-message
    counts and golden trace are pinned against the 1988 fixed-function
    transport.  Pass an explicit ``stream_config`` to run it adaptively.
    """
    system = ArgusSystem(
        latency=latency,
        kernel_overhead=kernel_overhead,
        stream_config=stream_config or StreamConfig.legacy(),
        **system_kwargs,
    )
    return GradesWorld(system, record_cost, print_cost)


def _format_line(student: str, average: float) -> str:
    """The paper's ``make_string(stu, average)``."""
    return "%s %.2f" % (student, average)


# ----------------------------------------------------------------------
# Figure 3-1: two sequential loops over two streams
# ----------------------------------------------------------------------
def program_fig_3_1(ctx, grades: Sequence[Tuple[str, int]], step_cost: float = 0.0):
    """``yield from``-able transcription of Figure 3-1.

    *step_cost* models the client CPU spent per loop iteration (argument
    preparation, encoding, ``make_string``); §4's point that "we cannot
    begin printing results until all calls to the grades database have
    been initiated" only has weight when initiating calls costs the
    caller something.
    """
    record_grade = ctx.lookup("grades_db", "record_grade")
    print_port = ctx.lookup("printer", "print")

    # % record grades
    averages: List[Promise] = []
    for student, grade in grades:  # for s: sinfo in info$elements(grades)
        if step_cost > 0:
            yield ctx.compute(step_cost)
        averages.append(record_grade.stream(student, grade))  # averages$addh
    record_grade.flush()  # flush record_grade

    # % print
    for index in range(len(averages)):  # for i: int in averages$indexes(a)
        average = yield averages[index].claim()  # pt$claim(a[i])
        if step_cost > 0:
            yield ctx.compute(step_cost)
        print_port.stream_statement(_format_line(grades[index][0], average))
    yield print_port.synch()  # synch print
    return len(grades)


# ----------------------------------------------------------------------
# Figure 4-1: forks communicating through a shared promise queue
# ----------------------------------------------------------------------
def program_fig_4_1(ctx, grades: Sequence[Tuple[str, int]], step_cost: float = 0.0):
    """``yield from``-able transcription of Figure 4-1.

    As the paper notes, this version has a *termination problem*: if the
    recording fork dies early, the printing fork can hang in ``deq``.  We
    reproduce the program as written (the queue is closed by ``use_db``
    only on its own failure path, mirroring the explicit cleanup a careful
    programmer would add; the benchmark of the *uncareful* version is in
    the E12 coenter benchmark).
    """
    aveq = PromiseQueue(ctx.env)

    def use_db(fctx, roster):
        record_grade = fctx.lookup("grades_db", "record_grade")
        try:
            for student, grade in roster:
                if step_cost > 0:
                    yield fctx.compute(step_cost)
                yield aveq.enq(record_grade.stream(student, grade))
            record_grade.flush()
            yield record_grade.synch()
        except Exception as exc:
            aveq.close(exc)  # without this, do_print hangs forever
            raise Signal("cannot_record")

    def do_print(fctx, roster):
        print_port = fctx.lookup("printer", "print")
        try:
            for index in range(len(roster)):
                promise = yield aveq.deq()
                average = yield promise.claim()
                if step_cost > 0:
                    yield fctx.compute(step_cost)
                print_port.stream_statement(
                    _format_line(roster[index][0], average)
                )
            yield print_port.synch()
        except Exception:
            raise Signal("cannot_print")

    p1 = ctx.fork(use_db, list(grades))
    p2 = ctx.fork(do_print, list(grades))
    yield p1.claim()
    yield p2.claim()
    return len(grades)


# ----------------------------------------------------------------------
# Figure 4-2: the coenter
# ----------------------------------------------------------------------
def program_fig_4_2(
    ctx,
    grades: Sequence[Tuple[str, int]],
    atomic: bool = False,
    step_cost: float = 0.0,
):
    """``yield from``-able transcription of Figure 4-2."""
    co = ctx.coenter()
    aveq = PromiseQueue(ctx.env)
    co.guard_queue(aveq.raw)

    def recording_arm(actx):
        record_grade = actx.lookup("grades_db", "record_grade")
        for student, grade in grades:
            if step_cost > 0:
                yield actx.compute(step_cost)
            yield aveq.enq(record_grade.stream(student, grade))
        record_grade.flush()
        yield record_grade.synch()

    def printing_arm(actx):
        print_port = actx.lookup("printer", "print")
        for index in range(len(grades)):
            promise = yield aveq.deq()
            average = yield promise.claim()
            if step_cost > 0:
                yield actx.compute(step_cost)
            print_port.stream_statement(_format_line(grades[index][0], average))
        yield print_port.synch()

    co.arm(recording_arm, atomic=atomic)
    co.arm(printing_arm, atomic=atomic)
    yield co.run()
    return len(grades)


# ----------------------------------------------------------------------
# RPC-only comparison (the §5 "Ada/SR" shape)
# ----------------------------------------------------------------------
def program_rpc(ctx, grades: Sequence[Tuple[str, int]], step_cost: float = 0.0):
    """Strictly synchronous version: every call waits for its reply."""
    record_grade = ctx.lookup("grades_db", "record_grade")
    print_port = ctx.lookup("printer", "print")
    for student, grade in grades:
        if step_cost > 0:
            yield ctx.compute(2 * step_cost)  # both calls prepared here
        average = yield record_grade.call(student, grade)
        yield print_port.call(_format_line(student, average))
    return len(grades)
