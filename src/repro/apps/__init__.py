"""The paper's example applications as reusable worlds."""

from repro.apps.grades import (
    PRINT_TYPE,
    RECORD_GRADE_TYPE,
    GradesWorld,
    build_grades_world,
    make_roster,
    program_fig_3_1,
    program_fig_4_1,
    program_fig_4_2,
    program_rpc,
)
from repro.apps.grades_argus import (
    FIG_3_1_SOURCE,
    FIG_4_2_SOURCE,
    run_grades_program,
)
from repro.apps.mailer import READ_MAIL_TYPE, SEND_MAIL_TYPE, build_mailer
from repro.apps.window import (
    CHANGE_COLOR_TYPE,
    CREATE_WINDOW_TYPE,
    PUTC_TYPE,
    PUTS_TYPE,
    build_window_system,
)

__all__ = [
    "CHANGE_COLOR_TYPE",
    "FIG_3_1_SOURCE",
    "FIG_4_2_SOURCE",
    "CREATE_WINDOW_TYPE",
    "GradesWorld",
    "PRINT_TYPE",
    "PUTC_TYPE",
    "PUTS_TYPE",
    "READ_MAIL_TYPE",
    "RECORD_GRADE_TYPE",
    "SEND_MAIL_TYPE",
    "build_grades_world",
    "build_mailer",
    "build_window_system",
    "make_roster",
    "program_fig_3_1",
    "program_fig_4_1",
    "program_fig_4_2",
    "program_rpc",
    "run_grades_program",
]
