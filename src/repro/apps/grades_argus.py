"""The grades example written in mini-Argus itself.

These sources are the closest executable artifacts to the paper's actual
figures: ``FIG_3_1_SOURCE`` transcribes Figure 3-1 (two sequential loops),
``FIG_4_2_SOURCE`` transcribes Figure 4-2 (the coenter with a shared
``queue[pt]``).  Both print via a ``printer`` guardian whose lines are
returned for inspection; tests check they agree with each other and with
the Python transcriptions in :mod:`repro.apps.grades`.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.entities.system import ArgusSystem
from repro.lang.interp import Interpreter, load_module

__all__ = ["FIG_3_1_SOURCE", "FIG_4_2_SOURCE", "run_grades_program"]

_PRELUDE = """
% The grades example, straight from the paper (section 3.1).
sinfo = record [ stu: string, grade: int ]
info = array [ sinfo ]
pt = promise returns (real)
averages = array [ pt ]

guardian grades_db is
  handler record_grade (stu: string, grade: int) returns (real)
    sleep(0.2)                      % database work
    return (float(grade))
  end
end

guardian printer is
  handler print (line: string)
    sleep(0.1)                      % printing work
    return ()
  end
end
"""

#: Figure 3-1: record everything, flush, then claim-and-print in order.
FIG_3_1_SOURCE = _PRELUDE + """
program main (grades: info)
  a: averages := averages$create()   % create new, empty array
  % record grades
  for s: sinfo in info$elements(grades) do
    averages$addh(a, stream grades_db.record_grade(s.stu, s.grade))
  end
  flush grades_db.record_grade
  % print
  output: string := ""
  for i: int in averages$indexes(a) do
    line: string := make_string(grades[i].stu, pt$claim(a[i]))
    stream printer.print(line)
    output := output + line + ";"
  end
  synch printer.print
  return (output)
end
"""

#: Figure 4-2: the coenter, with a shared promise queue between the arms.
FIG_4_2_SOURCE = _PRELUDE + """
program main (grades: info)
  aveq: queue[pt] := queue[pt]$create()
  output: string := ""
  coenter
  action   % recording grades
    for s: sinfo in grades do
      queue[pt]$enq(aveq, stream grades_db.record_grade(s.stu, s.grade))
    end
    synch grades_db.record_grade
  action   % printing
    i: int := 0
    while i < info$len(grades) do
      ave: pt := queue[pt]$deq(aveq)
      line: string := make_string(grades[i].stu, pt$claim(ave))
      stream printer.print(line)
      output := output + line + ";"
      i := i + 1
    end
    synch printer.print
  end
  return (output)
end
"""


def run_grades_program(
    source: str,
    roster: Sequence[Tuple[str, int]],
    **system_kwargs,
) -> Tuple[str, ArgusSystem]:
    """Run one of the figure sources over *roster*; returns its output
    string (``"student avg;..."``) and the system (for timing/stats)."""
    module = load_module(source)
    defaults = dict(latency=1.0, kernel_overhead=0.1)
    defaults.update(system_kwargs)
    system = ArgusSystem(**defaults)
    interp = Interpreter(module, system)
    interp.instantiate()
    grades_value = [{"stu": student, "grade": grade} for student, grade in roster]
    process = interp.spawn_program("main", grades_value)
    output = system.run(until=process)
    return output, system
