"""The window system of §2: dynamic port creation and port transmission.

    "a window system might provide a ``create_window`` port that is used
     to create a new window.  When called, this port returns a number of
     newly-created ports that can be used to interact with the new
     window ...  All ports for a particular window might be placed in the
     same group, but ports of different windows might belong to different
     groups."

``create_window`` dynamically creates a fresh port group holding three
ports (``putc``, ``puts``, ``change_color``) and returns them in a record
— exercising both dynamic groups and ports travelling as call results.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List

from repro.entities.system import ArgusSystem
from repro.types.signatures import CHAR, STRING, HandlerType, PortRefType, RecordOf

__all__ = [
    "PUTC_TYPE",
    "PUTS_TYPE",
    "CHANGE_COLOR_TYPE",
    "CREATE_WINDOW_TYPE",
    "build_window_system",
]

PUTC_TYPE = HandlerType(args=[CHAR])
PUTS_TYPE = HandlerType(args=[STRING])
CHANGE_COLOR_TYPE = HandlerType(args=[STRING])

#: ``create_window: port () returns (window)`` where ``window`` is the
#: record of ports from the paper.
CREATE_WINDOW_TYPE = HandlerType(
    returns=[
        RecordOf(
            {
                "putc": PortRefType(PUTC_TYPE),
                "puts": PortRefType(PUTS_TYPE),
                "change_color": PortRefType(CHANGE_COLOR_TYPE),
            }
        )
    ]
)

_window_serial = itertools.count(1)


def build_window_system(system: ArgusSystem, name: str = "windows"):
    """Create the window-system guardian.

    Each window's content is observable at
    ``guardian.state['windows'][window_id]`` as
    ``{"text": [...], "color": str}``.
    """
    guardian = system.create_guardian(name)
    guardian.state["windows"] = {}

    def create_window(ctx):
        window_id = "w%d" % next(_window_serial)
        window_state: Dict[str, Any] = {"text": [], "color": "white"}
        ctx.guardian.state["windows"][window_id] = window_state

        def putc(hctx, ch: str):
            yield hctx.compute(0.01)
            window_state["text"].append(ch)
            return None

        def puts(hctx, text: str):
            yield hctx.compute(0.02)
            window_state["text"].append(text)
            return None

        def change_color(hctx, color: str):
            yield hctx.compute(0.01)
            window_state["color"] = color
            return None

        # "All ports for a particular window might be placed in the same
        # group" — a fresh group per window.
        group = ctx.guardian.create_group(window_id)
        port_putc = group.add_port("putc", PUTC_TYPE, putc)
        port_puts = group.add_port("puts", PUTS_TYPE, puts)
        port_color = group.add_port("change_color", CHANGE_COLOR_TYPE, change_color)
        yield ctx.compute(0.05)
        return {
            "putc": port_putc.descriptor(),
            "puts": port_puts.descriptor(),
            "change_color": port_color.descriptor(),
        }

    guardian.create_handler("create_window", CREATE_WINDOW_TYPE, create_window)
    return guardian


def window_text(guardian, window_id: str) -> List[str]:
    """The accumulated text of a window (test/benchmark helper)."""
    return list(guardian.state["windows"][window_id]["text"])
