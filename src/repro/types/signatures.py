"""Type algebra for handler, port and promise types.

The paper's central typing claim is that promises are *strongly typed*:

    "Associated with each handler type is a related promise type. ...
     A promise type has a results part, listing the type or types of objects
     returned by the handler call in the normal case, and an exceptions
     part, listing the exceptions of the handler."

This module defines the small structural type language those signatures are
written in (ints, reals, bools, chars, strings, arrays, records, ports) plus
:class:`HandlerType` and :class:`PromiseType`, with the derivation
``HandlerType.promise_type()`` mirroring the paper's ``ht`` → ``pt``
relationship.  The same algebra is reused by the value-transmission layer
(:mod:`repro.encoding`) and the mini-Argus static checker
(:mod:`repro.lang.typecheck`).
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Type",
    "IntType",
    "RealType",
    "BoolType",
    "CharType",
    "StringType",
    "NullType",
    "AnyType",
    "ArrayOf",
    "RecordOf",
    "PortRefType",
    "UserType",
    "INT",
    "REAL",
    "BOOL",
    "CHAR",
    "STRING",
    "NULL",
    "ANY",
    "HandlerType",
    "PromiseType",
    "SignatureError",
]


class SignatureError(Exception):
    """Raised for malformed handler/promise signatures."""


class Type:
    """Base class for all type descriptors.  Types are immutable values."""

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self._key() == other._key()  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))

    def _key(self) -> Tuple:
        return ()

    def __repr__(self) -> str:
        return self.name()

    def name(self) -> str:
        """Human-readable spelling used in error messages and the DSL."""
        raise NotImplementedError


class IntType(Type):
    def name(self) -> str:
        return "int"


class RealType(Type):
    def name(self) -> str:
        return "real"


class BoolType(Type):
    def name(self) -> str:
        return "bool"


class CharType(Type):
    def name(self) -> str:
        return "char"


class StringType(Type):
    def name(self) -> str:
        return "string"


class NullType(Type):
    """The type of 'no value' (a handler with no results)."""

    def name(self) -> str:
        return "null"


class AnyType(Type):
    """Escape hatch matching any value; used sparingly by tests/baselines."""

    def name(self) -> str:
        return "any"


INT = IntType()
REAL = RealType()
BOOL = BoolType()
CHAR = CharType()
STRING = StringType()
NULL = NullType()
ANY = AnyType()


class ArrayOf(Type):
    """Homogeneous, ordered, growable sequence (CLU/Argus ``array[t]``)."""

    def __init__(self, element: Type) -> None:
        if not isinstance(element, Type):
            raise SignatureError("array element must be a Type, got %r" % (element,))
        self.element = element

    def _key(self) -> Tuple:
        return (self.element,)

    def name(self) -> str:
        return "array[%s]" % self.element.name()


class RecordOf(Type):
    """Named-field record (CLU/Argus ``record[f1: t1, ...]``).

    Field order is significant for the external representation.
    """

    def __init__(self, fields: Mapping[str, Type]) -> None:
        if not fields:
            raise SignatureError("record must have at least one field")
        for fname, ftype in fields.items():
            if not isinstance(ftype, Type):
                raise SignatureError(
                    "record field %r must be a Type, got %r" % (fname, ftype)
                )
        self.fields: Tuple[Tuple[str, Type], ...] = tuple(fields.items())

    def _key(self) -> Tuple:
        return self.fields

    def field_dict(self) -> Dict[str, Type]:
        """Field name -> type mapping (insertion order preserved)."""
        return dict(self.fields)

    def name(self) -> str:
        inner = ", ".join("%s: %s" % (f, t.name()) for f, t in self.fields)
        return "record[%s]" % inner


class PortRefType(Type):
    """A reference to a remote port (ports may travel in messages, §2).

    The carried :class:`HandlerType` types calls made through the reference.
    """

    def __init__(self, handler_type: "HandlerType") -> None:
        if not isinstance(handler_type, HandlerType):
            raise SignatureError(
                "port type must carry a HandlerType, got %r" % (handler_type,)
            )
        self.handler_type = handler_type

    def _key(self) -> Tuple:
        return (self.handler_type,)

    def name(self) -> str:
        return "port%s" % self.handler_type.suffix()


class UserType(Type):
    """An abstract data type with user-provided value transmission.

    "When an argument or result is an object belonging to some abstract
    type, encoding and decoding are done by user-provided code, which may
    contain errors" (§3).  A ``UserType`` carries that user code:
    ``to_external`` translates an internal value to a value of the
    *external* type; ``from_external`` translates back.  Either may raise —
    the runtime maps such errors to the ``failure`` exception and, on the
    receiving side, breaks the stream.
    """

    def __init__(
        self,
        type_name: str,
        external: Type,
        to_external,
        from_external,
        validate=None,
    ) -> None:
        if not isinstance(external, Type):
            raise SignatureError(
                "external representation must be a Type, got %r" % (external,)
            )
        if isinstance(external, (UserType, AnyType)):
            raise SignatureError(
                "external representation must be a concrete transmissible type"
            )
        self.type_name = type_name
        self.external = external
        self.to_external = to_external
        self.from_external = from_external
        self.validate = validate

    def _key(self) -> Tuple:
        return (self.type_name, self.external)

    def name(self) -> str:
        return self.type_name


def _type_tuple(items: Optional[Iterable[Type]], what: str) -> Tuple[Type, ...]:
    if items is None:
        return ()
    out = []
    for item in items:
        if not isinstance(item, Type):
            raise SignatureError("%s must be Types, got %r" % (what, item))
        out.append(item)
    return tuple(out)


#: Exception names every handler implicitly carries (the paper: "Since any
#: call can fail, every handler can raise the exceptions failure and
#: unavailable.  We do not bother to list these exceptions explicitly.")
IMPLICIT_SIGNALS: Tuple[str, ...] = ("unavailable", "failure")


class HandlerType(Type):
    """``handlertype (args) returns (results) signals (name(types), ...)``.

    Handler types are first-class types: variables (and DSL bindings) may
    hold handler references, typed by one of these.
    """

    def __init__(
        self,
        args: Optional[Sequence[Type]] = None,
        returns: Optional[Sequence[Type]] = None,
        signals: Optional[Mapping[str, Sequence[Type]]] = None,
    ) -> None:
        self.args = _type_tuple(args, "handler arguments")
        self.returns = _type_tuple(returns, "handler results")
        sig_map: Dict[str, Tuple[Type, ...]] = {}
        for sname, stypes in (signals or {}).items():
            if sname in IMPLICIT_SIGNALS:
                raise SignatureError(
                    "signal %r is implicit on every handler; do not declare it"
                    % sname
                )
            sig_map[sname] = _type_tuple(stypes, "signal %r arguments" % sname)
        self.signals: Dict[str, Tuple[Type, ...]] = sig_map

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, HandlerType)
            and self.args == other.args
            and self.returns == other.returns
            and self.signals == other.signals
        )

    def __hash__(self) -> int:
        return hash((self.args, self.returns, tuple(sorted(self.signals.items()))))

    def suffix(self) -> str:
        """The ``(args) returns (...) signals (...)`` spelling (no keyword)."""
        parts = ["(%s)" % ", ".join(t.name() for t in self.args)]
        if self.returns:
            parts.append("returns (%s)" % ", ".join(t.name() for t in self.returns))
        if self.signals:
            sigs = []
            for sname, stypes in self.signals.items():
                if stypes:
                    sigs.append("%s(%s)" % (sname, ", ".join(t.name() for t in stypes)))
                else:
                    sigs.append(sname)
            parts.append("signals (%s)" % ", ".join(sigs))
        return " ".join(parts)

    def __repr__(self) -> str:
        return "handlertype %s" % self.suffix()

    def name(self) -> str:
        return repr(self)

    @property
    def has_results(self) -> bool:
        """Whether a normal reply carries data (if not, calls go as *sends*)."""
        return bool(self.returns)

    def promise_type(self) -> "PromiseType":
        """Derive the related promise type (paper §3: ``ht`` → ``pt``)."""
        return PromiseType(returns=self.returns, signals=self.signals)

    def declares_signal(self, name: str) -> bool:
        """Whether *name* is a declared or implicit exception here."""
        return name in self.signals or name in IMPLICIT_SIGNALS


class PromiseType(Type):
    """``promise returns (results) signals (name(types), ...)``.

    Like handler types, every promise type implicitly carries the
    ``unavailable`` and ``failure`` exceptions.  Promise types are
    first-class (variables and arrays may hold promises) but promises are
    never transmissible (§3: "promises are not legal as arguments or
    results").
    """

    def __init__(
        self,
        returns: Optional[Sequence[Type]] = None,
        signals: Optional[Mapping[str, Sequence[Type]]] = None,
    ) -> None:
        self.returns = _type_tuple(returns, "promise results")
        sig_map: Dict[str, Tuple[Type, ...]] = {}
        for sname, stypes in (signals or {}).items():
            if sname in IMPLICIT_SIGNALS:
                raise SignatureError(
                    "signal %r is implicit on every promise; do not declare it"
                    % sname
                )
            sig_map[sname] = _type_tuple(stypes, "signal %r arguments" % sname)
        self.signals: Dict[str, Tuple[Type, ...]] = sig_map

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, PromiseType)
            and self.returns == other.returns
            and self.signals == other.signals
        )

    def __hash__(self) -> int:
        return hash((self.returns, tuple(sorted(self.signals.items()))))

    def __repr__(self) -> str:
        parts = ["promise"]
        if self.returns:
            parts.append("returns (%s)" % ", ".join(t.name() for t in self.returns))
        if self.signals:
            sigs = []
            for sname, stypes in self.signals.items():
                if stypes:
                    sigs.append("%s(%s)" % (sname, ", ".join(t.name() for t in stypes)))
                else:
                    sigs.append(sname)
            parts.append("signals (%s)" % ", ".join(sigs))
        return " ".join(parts)

    def name(self) -> str:
        return repr(self)

    def declares_signal(self, name: str) -> bool:
        """Whether *name* is a declared or implicit exception here."""
        return name in self.signals or name in IMPLICIT_SIGNALS
