"""Runtime conformance checking of values against the type algebra.

Argus is statically typed; our Python embedding recovers the same guarantees
dynamically: every handler call checks its arguments against the handler
type, and every reply is checked before a promise becomes ready.  A
violation at the sending side is a programming error (:class:`TypeViolation`);
a violation discovered while decoding a message maps to the ``failure``
exception, per section 3 of the paper.
"""

from __future__ import annotations

from typing import Any, Sequence, Tuple

from repro.types.signatures import (
    ANY,
    AnyType,
    ArrayOf,
    BoolType,
    CharType,
    HandlerType,
    IntType,
    NullType,
    PortRefType,
    PromiseType,
    RealType,
    RecordOf,
    StringType,
    Type,
    UserType,
)

__all__ = ["TypeViolation", "check_value", "conforms", "check_args", "check_results"]


class TypeViolation(TypeError):
    """A value does not conform to its declared type."""

    def __init__(self, expected: Type, value: Any, path: str = "value") -> None:
        super().__init__(
            "%s %r does not conform to type %s" % (path, value, expected.name())
        )
        self.expected = expected
        self.value = value
        self.path = path


def conforms(tp: Type, value: Any) -> bool:
    """Predicate form of :func:`check_value`."""
    try:
        check_value(tp, value)
        return True
    except TypeViolation:
        return False


def check_value(tp: Type, value: Any, path: str = "value") -> None:
    """Raise :class:`TypeViolation` unless *value* conforms to *tp*."""
    if isinstance(tp, AnyType):
        return
    if isinstance(tp, IntType):
        if isinstance(value, bool) or not isinstance(value, int):
            raise TypeViolation(tp, value, path)
        return
    if isinstance(tp, RealType):
        # Argus real; accept ints where a real is expected (widening).
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise TypeViolation(tp, value, path)
        return
    if isinstance(tp, BoolType):
        if not isinstance(value, bool):
            raise TypeViolation(tp, value, path)
        return
    if isinstance(tp, CharType):
        if not isinstance(value, str) or len(value) != 1:
            raise TypeViolation(tp, value, path)
        return
    if isinstance(tp, StringType):
        if not isinstance(value, str):
            raise TypeViolation(tp, value, path)
        return
    if isinstance(tp, NullType):
        if value is not None:
            raise TypeViolation(tp, value, path)
        return
    if isinstance(tp, ArrayOf):
        if not isinstance(value, (list, tuple)):
            raise TypeViolation(tp, value, path)
        for i, element in enumerate(value):
            check_value(tp.element, element, "%s[%d]" % (path, i))
        return
    if isinstance(tp, RecordOf):
        if not isinstance(value, dict):
            raise TypeViolation(tp, value, path)
        expected_fields = tp.field_dict()
        if set(value.keys()) != set(expected_fields.keys()):
            raise TypeViolation(tp, value, path)
        for fname, ftype in expected_fields.items():
            check_value(ftype, value[fname], "%s.%s" % (path, fname))
        return
    if isinstance(tp, HandlerType):
        # A handler reference: anything carrying an equal handler type.
        if getattr(value, "handler_type", None) != tp:
            raise TypeViolation(tp, value, path)
        return
    if isinstance(tp, PromiseType):
        if getattr(value, "ptype", None) != tp:
            raise TypeViolation(tp, value, path)
        return
    if isinstance(tp, UserType):
        # Abstract types: conformance is whatever the user's validator says;
        # without one we accept any value (the encoder is the real gate).
        if tp.validate is not None and not tp.validate(value):
            raise TypeViolation(tp, value, path)
        return
    if isinstance(tp, PortRefType):
        # Anything quacking like a port reference: must expose a port id and
        # a handler type equal to the declared one.
        handler_type = getattr(value, "handler_type", None)
        if getattr(value, "port_id", None) is None or handler_type is None:
            raise TypeViolation(tp, value, path)
        if handler_type != tp.handler_type:
            raise TypeViolation(tp, value, path)
        return
    raise TypeError("unknown type descriptor %r" % (tp,))


def check_args(handler_type: HandlerType, args: Sequence[Any]) -> None:
    """Check a call's argument tuple against the handler type."""
    if len(args) != len(handler_type.args):
        raise TypeViolation(
            ANY,
            tuple(args),
            "argument count (%d given, %d expected)"
            % (len(args), len(handler_type.args)),
        )
    for i, (tp, value) in enumerate(zip(handler_type.args, args)):
        check_value(tp, value, "argument %d" % i)


def check_results(returns: Tuple[Type, ...], results: Sequence[Any]) -> None:
    """Check a normal reply's result tuple against the declared results."""
    if len(results) != len(returns):
        raise TypeViolation(
            ANY,
            tuple(results),
            "result count (%d given, %d expected)" % (len(results), len(returns)),
        )
    for i, (tp, value) in enumerate(zip(returns, results)):
        check_value(tp, value, "result %d" % i)
