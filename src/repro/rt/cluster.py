"""Multi-process orchestration for the wallclock backend.

:class:`RtCluster` runs each server node of an :mod:`repro.rt` world as
a **real OS process** (``multiprocessing`` spawn context, so every
worker is a fresh interpreter and all cross-node traffic genuinely
crosses process boundaries as frames on TCP sockets).  The parent
process — typically a test or benchmark — keeps its own
:class:`~repro.rt.host.RtHost` for the client role.

Startup handshake, over a pipe per worker:

1. parent spawns the worker with its node name and a module-level
   ``setup(host)`` function (it must be importable — spawn pickles it
   by reference);
2. worker builds its host, runs ``setup``, binds port 0 and reports the
   actual port;
3. parent collects every worker's port into an address book and
   broadcasts it;
4. worker acknowledges and starts serving; the parent proceeds.

On ``stop()`` each worker exports its JSONL trace (when a trace dir is
configured — these are the per-process artifacts the ``net-parity`` CI
job uploads on failure) and reports its network counters back.  Every
pipe interaction in the parent carries a timeout so a hung worker fails
the run loudly instead of wedging CI.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Any, Callable, Dict, Optional, Tuple

from repro.rt.host import RtHost
from repro.streams.config import StreamConfig

__all__ = ["RtCluster", "ClusterError"]


class ClusterError(Exception):
    """A worker failed to start, respond, or stop in time."""


def _worker_main(
    node_name: str,
    setup: Callable[[RtHost], None],
    time_unit: float,
    stream_config: Optional[StreamConfig],
    trace_path: Optional[str],
    pipe,
) -> None:
    """Entry point of one server process."""
    try:
        host = RtHost(
            node_name,
            time_unit=time_unit,
            stream_config=stream_config,
            tracing=trace_path is not None,
        )
        setup(host)
        port = host.start()
        pipe.send(("port", port))
        kind, book = pipe.recv()
        assert kind == "book", kind
        host.set_address_book(book)
        pipe.send(("ready", None))
        while True:
            if pipe.poll(0.0):
                kind, _payload = pipe.recv()
                if kind == "stop":
                    break
            host.pump(0.05)
        if trace_path is not None:
            host.export_trace(trace_path)
        pipe.send(("stopped", host.stats()))
        host.shutdown()
    except Exception:  # pragma: no cover - surfaced via the parent
        import traceback

        try:
            pipe.send(("error", traceback.format_exc()))
        except OSError:
            pass
    finally:
        pipe.close()


def _recv(pipe, timeout: float, node: str) -> Tuple[str, Any]:
    """One guarded pipe read; raises :class:`ClusterError` on silence."""
    if not pipe.poll(timeout):
        raise ClusterError("worker %r sent nothing within %.1fs" % (node, timeout))
    kind, payload = pipe.recv()
    if kind == "error":
        raise ClusterError("worker %r failed:\n%s" % (node, payload))
    return kind, payload


class RtCluster:
    """A set of server processes plus the address book tying them together."""

    def __init__(
        self,
        workers: Dict[str, Callable[[RtHost], None]],
        time_unit: float = 0.001,
        stream_config: Optional[StreamConfig] = None,
        trace_dir: Optional[str] = None,
        start_timeout: float = 30.0,
    ) -> None:
        self.workers = dict(workers)
        self.time_unit = time_unit
        self.stream_config = stream_config
        self.trace_dir = trace_dir
        self.start_timeout = start_timeout
        self.book: Dict[str, Tuple[str, int]] = {}
        #: node -> network counter snapshot, filled by :meth:`stop`.
        self.worker_stats: Dict[str, Dict[str, int]] = {}
        self._procs: Dict[str, multiprocessing.process.BaseProcess] = {}
        self._pipes: Dict[str, Any] = {}

    # ------------------------------------------------------------------
    def trace_path(self, node: str) -> Optional[str]:
        if self.trace_dir is None:
            return None
        return os.path.join(self.trace_dir, "%s.trace.jsonl" % node.replace(":", "_"))

    def start(self) -> Dict[str, Tuple[str, int]]:
        """Spawn every worker; returns the address book."""
        if self.trace_dir is not None:
            os.makedirs(self.trace_dir, exist_ok=True)
        ctx = multiprocessing.get_context("spawn")
        for node, setup in self.workers.items():
            parent_end, child_end = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(
                    node,
                    setup,
                    self.time_unit,
                    self.stream_config,
                    self.trace_path(node),
                    child_end,
                ),
                name="rt-%s" % node,
                daemon=True,
            )
            proc.start()
            child_end.close()
            self._procs[node] = proc
            self._pipes[node] = parent_end
        try:
            for node, pipe in self._pipes.items():
                kind, port = _recv(pipe, self.start_timeout, node)
                assert kind == "port", kind
                self.book[node] = ("127.0.0.1", port)
            for node, pipe in self._pipes.items():
                pipe.send(("book", self.book))
            for node, pipe in self._pipes.items():
                _recv(pipe, self.start_timeout, node)  # "ready"
        except Exception:
            self.kill()
            raise
        return dict(self.book)

    def client_host(
        self,
        node_name: str = "node:client",
        tracing: bool = False,
        stream_config: Optional[StreamConfig] = None,
    ) -> RtHost:
        """An :class:`RtHost` in *this* process, routed at the workers."""
        host = RtHost(
            node_name,
            time_unit=self.time_unit,
            stream_config=stream_config or self.stream_config,
            tracing=tracing,
        )
        host.set_address_book(self.book)
        return host

    # ------------------------------------------------------------------
    def stop(self, timeout: float = 15.0) -> Dict[str, Dict[str, int]]:
        """Stop every worker, collecting stats (and traces on disk)."""
        for node, pipe in self._pipes.items():
            try:
                pipe.send(("stop", None))
            except OSError:
                pass
        failures = []
        for node, pipe in self._pipes.items():
            try:
                kind, stats = _recv(pipe, timeout, node)
                assert kind == "stopped", kind
                self.worker_stats[node] = stats
            except ClusterError as exc:
                failures.append(str(exc))
        for node, proc in self._procs.items():
            proc.join(timeout)
            if proc.is_alive():
                proc.terminate()
                proc.join(5.0)
                failures.append("worker %r had to be terminated" % (node,))
        self._procs.clear()
        self._pipes.clear()
        if failures:
            raise ClusterError("; ".join(failures))
        return dict(self.worker_stats)

    def kill(self) -> None:
        """Hard-stop every worker (cleanup path; no stats, no traces)."""
        for proc in self._procs.values():
            if proc.is_alive():
                proc.terminate()
        for proc in self._procs.values():
            proc.join(5.0)
        self._procs.clear()
        self._pipes.clear()

    # ------------------------------------------------------------------
    def __enter__(self) -> "RtCluster":
        self.start()
        return self

    def __exit__(self, exc_type, _exc, _tb) -> None:
        if exc_type is None:
            self.stop()
        else:
            self.kill()
