"""The wallclock driver: runs a simulator calendar against real time.

Every layer above the kernel — alarms, stream senders/receivers,
promises, the vat, guardians — schedules exclusively through
:class:`~repro.sim.kernel.Environment`'s calendar.  That makes the
backend seam exactly one object wide: instead of
:meth:`Environment.run` draining the calendar as fast as possible,
:class:`WallclockDriver` drains it *paced against the asyncio clock*,
firing each entry once real time has caught up with its simulated
timestamp.  Nothing above the kernel changes; the same transport state
machines that run deterministically under simulation run here against
real sockets (DESIGN.md §15).

Time mapping: one simulated time unit corresponds to ``time_unit`` real
seconds (default 1 ms, so the stream transport's default RTO of 20 sim
units becomes a 20 ms initial RTO).  The driver never lets simulated
time run *ahead* of the mapped real clock; external happenings (frames
arriving from a socket) enter the calendar through :meth:`inject`,
which first advances simulated "now" to the mapped real time so timers
armed afterwards measure genuine wallclock intervals.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Optional

from repro.sim.kernel import EmptySchedule, Infinity, StopSimulation
from repro.sim.kernel import _Stopper  # noqa: F401  (re-exported pattern)

__all__ = ["WallclockDriver", "WallclockTimeout"]

#: Calendar entries fired back-to-back before yielding to the asyncio
#: loop, so socket IO keeps flowing during a burst of due timers.
_STEPS_PER_YIELD = 64


class WallclockTimeout(Exception):
    """A :meth:`WallclockDriver.run` call exceeded its real-time budget."""


class WallclockDriver:
    """Drains one environment's calendar in step with the asyncio clock."""

    def __init__(
        self,
        env: Any,
        loop: Optional[asyncio.AbstractEventLoop] = None,
        time_unit: float = 0.001,
    ) -> None:
        if time_unit <= 0:
            raise ValueError("time_unit must be positive, got %r" % (time_unit,))
        self.env = env
        self.loop = loop or asyncio.new_event_loop()
        #: Real seconds per simulated time unit.
        self.time_unit = time_unit
        self._wake = asyncio.Event()
        #: loop.time() at which simulated time 0 sits; refreshed at the
        #: start of every drain so simulated time never jumps across the
        #: gaps between two ``run`` calls.
        self._t0: Optional[float] = None
        self._stopped = False
        #: Entries fired, for tests and the bench report.
        self.steps = 0

    # ------------------------------------------------------------------
    # Clock mapping
    # ------------------------------------------------------------------
    def real_now(self) -> float:
        """Current real time mapped into simulated units (>= env.now)."""
        if self._t0 is None:
            return self.env._now
        mapped = (self.loop.time() - self._t0) / self.time_unit
        return mapped if mapped > self.env._now else self.env._now

    def _rebase(self) -> None:
        self._t0 = self.loop.time() - self.env._now * self.time_unit

    # ------------------------------------------------------------------
    # External entry point (socket callbacks)
    # ------------------------------------------------------------------
    def inject(self, fn: Callable[..., None], *args: Any) -> None:
        """Schedule ``fn(*args)`` from outside the calendar (same thread).

        Advances simulated "now" to the mapped real clock first, so the
        callback — and every timer it arms — sees wallclock-accurate
        timestamps, then wakes the drain loop.
        """
        env = self.env
        now = self.real_now()
        if now > env._now:
            env._now = now
        env.call_soon(fn, *args)
        self._wake.set()

    def stop(self) -> None:
        """Make the current (or next) drain return promptly."""
        self._stopped = True
        self._wake.set()

    # ------------------------------------------------------------------
    # Draining
    # ------------------------------------------------------------------
    async def drain(
        self,
        until: Any = None,
        timeout: Optional[float] = None,
        idle_exit: bool = False,
    ) -> Any:
        """Drain the calendar against real time.

        *until* mirrors :meth:`Environment.run`: ``None`` (run until
        :meth:`stop` or — with ``idle_exit`` — until the calendar is
        empty), a number (simulated-time bound), or an event (run until
        it fires; returns its value).  *timeout* is a **real-seconds**
        budget; exceeding it raises :class:`WallclockTimeout`.
        """
        env = self.env
        self._stopped = False
        self._rebase()
        deadline = None if timeout is None else self.loop.time() + timeout

        stop_event = None
        limit = Infinity
        if until is None:
            pass
        elif hasattr(until, "callbacks"):
            stop_event = until
            if until.triggered:
                return until.value_or_raise()
            until.callbacks.append(_Stopper(until))
        else:
            limit = float(until)

        steps_since_yield = 0
        while not self._stopped:
            t = env.peek()
            # The next simulated moment anything happens: the next
            # calendar entry, clamped by the run-until time bound.
            target = t if t < limit else limit
            if target == Infinity:
                if idle_exit and stop_event is None:
                    return None
                await self._wait(None, deadline)
                continue
            now = self.real_now()
            if target > now:
                await self._wait((target - now) * self.time_unit, deadline)
                continue
            if t > limit:
                # Real time reached the bound with nothing due before it.
                env._now = limit
                return None
            try:
                env.step()
            except StopSimulation as stop:
                return stop.value
            except EmptySchedule:
                continue
            self.steps += 1
            steps_since_yield += 1
            if steps_since_yield >= _STEPS_PER_YIELD:
                steps_since_yield = 0
                if deadline is not None and self.loop.time() > deadline:
                    raise WallclockTimeout(
                        "drain exceeded its %.3fs budget" % (timeout,)
                    )
                # Let socket callbacks run between bursts of due timers.
                await asyncio.sleep(0)

        if stop_event is not None and not stop_event.triggered:
            raise WallclockTimeout("driver stopped before %r fired" % (stop_event,))
        return None

    async def _wait(self, delay: Optional[float], deadline: Optional[float]) -> None:
        """Sleep until woken, *delay* elapses, or *deadline* passes."""
        if deadline is not None:
            budget = deadline - self.loop.time()
            if budget <= 0:
                raise WallclockTimeout("real-time budget exhausted")
            delay = budget if delay is None else min(delay, budget)
            timed_out_is_deadline = delay >= budget
        else:
            timed_out_is_deadline = False
        self._wake.clear()
        try:
            await asyncio.wait_for(self._wake.wait(), delay)
        except asyncio.TimeoutError:
            if timed_out_is_deadline:
                raise WallclockTimeout("real-time budget exhausted") from None

    # ------------------------------------------------------------------
    # Synchronous facade
    # ------------------------------------------------------------------
    def run(
        self, until: Any = None, timeout: Optional[float] = None, idle_exit: bool = False
    ) -> Any:
        """Blocking wrapper over :meth:`drain` on the driver's loop."""
        return self.loop.run_until_complete(
            self.drain(until=until, timeout=timeout, idle_exit=idle_exit)
        )
