"""The real-wallclock backend: the same Stream API on actual sockets.

The simulator (:mod:`repro.sim`) is the deterministic twin; this
package binds the identical guardian/stream/promise machinery to real
time and real TCP (DESIGN.md §15):

* :class:`~repro.rt.clock.WallclockDriver` — paces an unmodified
  :class:`~repro.sim.kernel.Environment` calendar against the asyncio
  clock;
* :class:`~repro.rt.transport.TcpNetwork` — the ``Network`` surface
  over length-prefixed frames on reconnecting TCP connections, treated
  as a *lossy datagram carrier* (exactly-once comes from the stream
  transport above, as under simulation);
* :class:`~repro.rt.host.RtHost` — one process of a deployment: the
  ``ArgusSystem`` facade over driver + transport;
* :class:`~repro.rt.cluster.RtCluster` — spawns server nodes as real
  OS processes and wires the address book.
"""

from repro.rt.clock import WallclockDriver, WallclockTimeout
from repro.rt.cluster import ClusterError, RtCluster
from repro.rt.host import RtHost
from repro.rt.transport import TcpNetwork

__all__ = [
    "WallclockDriver",
    "WallclockTimeout",
    "TcpNetwork",
    "RtHost",
    "RtCluster",
    "ClusterError",
]
