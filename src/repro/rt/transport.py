"""A real TCP transport presenting the simulator's ``Network`` surface.

:class:`TcpNetwork` is a drop-in for :class:`repro.net.network.Network`
as seen by the layers above it — stream senders/receivers and guardian
endpoints call exactly ``.send(message, want_done=False)``, ``.node()``,
``.add_node()``, ``.stats`` and ``._forget_node_clocks()`` — but each
packet travels as a length-prefixed frame (:mod:`repro.streams.frames`)
over a TCP connection to the process hosting the destination node.

The crucial design point: **TCP is treated as an unreliable datagram
carrier, not a reliability layer.**  A connection that drops loses the
frames in flight, exactly like the simulator's lossy links; delivery
guarantees come from the stream transport above (RTO retransmission,
SACK, receiver-side dedup), the same state machines the chaos suite
exercises under simulation.  Consequently this layer keeps no send
queue beyond the dial window, performs no handshaking beyond a single
``HELLO`` frame identifying the dialing node, and reconnects simply by
dialing again on the next send.

Connections are bidirectional and deduplicated by peer node: the
acceptor learns the peer's node name from its ``HELLO`` and routes
replies back over the same connection, so a client behind an ephemeral
port (one that never listens) still receives replies.
"""

from __future__ import annotations

import asyncio
from typing import Dict, List, Optional, Tuple

from repro.encoding.errors import DecodeError
from repro.net.message import Message
from repro.net.network import NetworkStats, Node, NodeDown
from repro.sim.events import Event
from repro.streams.frames import (
    FrameAssembler,
    Hello,
    decode_body,
    encode_frame,
    encode_hello,
    encode_packet,
)
from repro.streams.wire import CallPacket

__all__ = ["TcpNetwork"]


class _Conn(asyncio.Protocol):
    """One TCP connection carrying frames, in either direction."""

    def __init__(self, network: "TcpNetwork", peer: Optional[str] = None) -> None:
        self.network = network
        #: Node name of the far side; None on an accepted connection
        #: until its HELLO arrives.
        self.peer = peer
        self.transport: Optional[asyncio.Transport] = None
        self.assembler = FrameAssembler()
        self.closed = False

    # -- asyncio.Protocol ------------------------------------------------
    def connection_made(self, transport: asyncio.BaseTransport) -> None:
        self.transport = transport  # type: ignore[assignment]

    def data_received(self, data: bytes) -> None:
        try:
            bodies = self.assembler.feed(data)
            for body in bodies:
                self.network._on_frame(self, decode_body(body), len(body))
        except DecodeError as exc:
            # A corrupted byte stream: kill the connection; retransmission
            # above recovers whatever was in flight.
            self.network.stats_frames_corrupt += 1
            self.network._trace("rt.conn_corrupt", peer=self.peer, error=str(exc))
            self.abort()

    def connection_lost(self, exc: Optional[Exception]) -> None:
        self.closed = True
        self.network._on_conn_lost(self)

    # -- sending ---------------------------------------------------------
    def write_frame(self, data: bytes) -> None:
        if not self.closed and self.transport is not None:
            self.transport.write(data)

    def abort(self) -> None:
        self.closed = True
        if self.transport is not None:
            self.transport.abort()


class TcpNetwork:
    """The ``Network`` surface of one process, over real sockets."""

    def __init__(self, driver, local_node: str) -> None:
        self.driver = driver
        self.env = driver.env
        self.local_node = local_node
        self.stats = NetworkStats()
        #: Frames that failed to decode (corrupt byte streams).
        self.stats_frames_corrupt = 0
        #: Connections torn down (either direction, any reason).
        self.stats_conns_lost = 0
        #: Dials attempted / failed.
        self.stats_dials = 0
        self.stats_dial_failures = 0
        #: node name -> (host, port) for every *listening* peer process.
        self.book: Dict[str, Tuple[str, int]] = {}
        self._nodes: Dict[str, Node] = {}
        #: peer node -> established connection (either direction).
        self._conns: Dict[str, _Conn] = {}
        #: peer node -> frames waiting while a dial is in progress.
        self._dialing: Dict[str, List[bytes]] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        #: Test hook: when > 0, every established connection is aborted
        #: after this many outgoing frames, simulating flaky peers.
        self.reset_after_frames = 0
        self._frames_on_conn: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Topology (the simulated-Network surface)
    # ------------------------------------------------------------------
    def add_node(self, name: str) -> Node:
        if name in self._nodes:
            raise ValueError("node %r already exists" % (name,))
        node = Node(self, name)
        self._nodes[name] = node
        return node

    def node(self, name: str) -> Node:
        try:
            return self._nodes[name]
        except KeyError:
            raise KeyError("no node named %r" % (name,)) from None

    def nodes(self) -> Tuple[Node, ...]:
        return tuple(self._nodes.values())

    def _forget_node_clocks(self, name: str) -> None:
        """Crash hook from :class:`Node`; no NIC clocks exist here."""

    # ------------------------------------------------------------------
    # Listening / dialing
    # ------------------------------------------------------------------
    async def listen(self, host: str = "127.0.0.1", port: int = 0) -> int:
        """Accept connections for this process; returns the bound port."""
        loop = self.driver.loop
        self._server = await loop.create_server(lambda: _Conn(self), host, port)
        return self._server.sockets[0].getsockname()[1]

    async def _dial(self, peer: str) -> None:
        host, port = self.book[peer]
        loop = self.driver.loop
        self.stats_dials += 1
        try:
            _transport, conn = await loop.create_connection(
                lambda: _Conn(self, peer), host, port
            )
        except OSError:
            # Connection refused / unreachable: everything queued for this
            # dial is lost, exactly like datagrams into a partition.
            self.stats_dial_failures += 1
            lost = self._dialing.pop(peer, [])
            self.stats.messages_dropped_crash += len(lost)
            self._trace("rt.dial_failed", peer=peer, frames_lost=len(lost))
            return
        old = self._conns.get(peer)
        if old is not None and not old.closed:
            old.abort()
        self._conns[peer] = conn
        conn.write_frame(encode_frame(encode_hello(self.local_node)))
        for data in self._dialing.pop(peer, []):
            self._write(conn, data)

    # ------------------------------------------------------------------
    # Sending (the simulated-Network surface)
    # ------------------------------------------------------------------
    def send(self, message: Message, want_done: bool = True) -> Optional[Event]:
        src = self._nodes.get(message.src)
        if src is None:
            self.node(message.src)  # canonical KeyError
        if not src.alive:
            raise NodeDown("cannot send from crashed node %r" % (message.src,))
        env = self.env
        message.send_time = env._now
        dst_name = message.dst
        local = self._nodes.get(dst_name)
        if local is not None:
            # Same-process delivery: next calendar tick, like the
            # simulator's same-node fast path.
            env.call_soon(self._finish_local, message, local)
        else:
            stats = self.stats
            stats.messages_sent += 1
            stats.kernel_calls += 1
            stats.bytes_sent += message.wire_bytes
            tracer = env.tracer
            if tracer is not None:
                tracer.emit(
                    "message.sent",
                    src=message.src,
                    dst=dst_name,
                    address=message.address,
                    bytes=message.wire_bytes,
                    payload=type(message.payload).__name__,
                )
            data = encode_frame(encode_packet(message.payload))
            conn = self._conns.get(dst_name)
            if conn is not None and not conn.closed:
                self._write(conn, data)
            elif dst_name in self._dialing:
                self._dialing[dst_name].append(data)
            elif dst_name in self.book:
                self._dialing[dst_name] = [data]
                self.driver.loop.create_task(self._dial(dst_name))
            else:
                # No route: equivalent to sending to a crashed node.
                stats.messages_dropped_crash += 1
                self._trace(
                    "message.dropped", src=message.src, dst=dst_name, reason="no_route"
                )
        if not want_done:
            return None
        done = Event(env)
        done._ok = True
        done._value = None
        env.schedule(done, 0.0)
        return done

    def _write(self, conn: _Conn, data: bytes) -> None:
        conn.write_frame(data)
        if self.reset_after_frames > 0:
            key = id(conn)
            count = self._frames_on_conn.get(key, 0) + 1
            if count >= self.reset_after_frames:
                self._frames_on_conn.pop(key, None)
                conn.abort()
            else:
                self._frames_on_conn[key] = count

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------
    def _on_frame(self, conn: _Conn, decoded, nbytes: int) -> None:
        if isinstance(decoded, Hello):
            old = self._conns.get(decoded.node)
            conn.peer = decoded.node
            if old is not None and old is not conn and not old.closed:
                # The peer redialed; the newest connection wins.
                old.abort()
            self._conns[decoded.node] = conn
            return
        key = decoded.key
        if isinstance(decoded, CallPacket):
            src, dst, address = key.src_node, key.dst_node, key.dst_address
        else:
            src, dst, address = key.dst_node, key.src_node, key.src_address
        # Hop into the calendar: simulated "now" advances to real time
        # and the packet is delivered as one calendar entry, so handler
        # dispatch interleaves deterministically with due timers.
        self.driver.inject(self._deliver_remote, src, dst, address, decoded, nbytes)

    def _deliver_remote(
        self, src: str, dst: str, address: str, packet, nbytes: int
    ) -> None:
        node = self._nodes.get(dst)
        if node is None or not node.alive:
            self.stats.messages_dropped_crash += 1
            self._trace("message.dropped", src=src, dst=dst, reason="crash")
            return
        self.stats.messages_delivered += 1
        tracer = self.env.tracer
        if tracer is not None:
            # Clocks are per-process, so one-way latency is unknowable
            # here; charge 0 and let span timelines carry the truth.
            tracer.emit(
                "message.delivered",
                src=src,
                dst=dst,
                local=False,
                latency=0.0,
            )
        message = Message(src, dst, address, packet, nbytes)
        message.send_time = self.env._now
        node._deliver(message)

    def _finish_local(self, message: Message, dst: Node) -> None:
        if dst.alive:
            self.stats.messages_delivered += 1
            tracer = self.env.tracer
            if tracer is not None:
                tracer.emit(
                    "message.delivered",
                    src=message.src,
                    dst=message.dst,
                    local=True,
                    latency=self.env.now - message.send_time,
                )
            dst._deliver(message)

    # ------------------------------------------------------------------
    # Fault injection / shutdown
    # ------------------------------------------------------------------
    def _on_conn_lost(self, conn: _Conn) -> None:
        self.stats_conns_lost += 1
        self._frames_on_conn.pop(id(conn), None)
        if conn.peer is not None and self._conns.get(conn.peer) is conn:
            del self._conns[conn.peer]

    def drop_connections(self) -> int:
        """Abort every established connection (frames in flight are lost);
        the next send redials.  Returns the number dropped."""
        conns = [c for c in self._conns.values() if not c.closed]
        for conn in conns:
            conn.abort()
        return len(conns)

    def close(self) -> None:
        """Tear down the server and every connection."""
        if self._server is not None:
            self._server.close()
            self._server = None
        for conn in list(self._conns.values()):
            conn.abort()
        self._conns.clear()
        self._dialing.clear()

    def _trace(self, etype: str, **fields) -> None:
        tracer = self.env.tracer
        if tracer is not None:
            tracer.emit(etype, **fields)
