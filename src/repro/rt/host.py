"""One OS process of a real-socket Argus world.

:class:`RtHost` is the wallclock twin of
:class:`~repro.entities.system.ArgusSystem`: it owns an
:class:`~repro.sim.kernel.Environment`, a
:class:`~repro.rt.clock.WallclockDriver`, and a
:class:`~repro.rt.transport.TcpNetwork`, and exposes the same facade
the guardian layer consumes (``env`` / ``network`` / ``stream_config``
/ ``process_spawn_overhead`` / ``guardians`` / ``lookup`` / ``run``).
Guardians created on a host are ordinary
:class:`~repro.entities.guardian.Guardian` objects — the entire entity,
stream, promise and vat machinery runs unchanged; only the clock pacing
and the byte transport differ.

Because each process holds only its own guardians, calls to guardians
in *other* processes resolve through declared topology entries
(:meth:`declare`) instead of a shared registry: a declaration names the
guardian, the handler's type, and the node (process) hosting it, which
is exactly what a :class:`~repro.encoding.xrep.PortDescriptor` carries
on the wire in Argus proper.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, Optional, Tuple

from repro.encoding.xrep import PortDescriptor, type_fingerprint
from repro.rt.clock import WallclockDriver
from repro.rt.transport import TcpNetwork
from repro.sim.kernel import Environment
from repro.streams.config import StreamConfig

__all__ = ["RtHost"]


class RtHost:
    """A single process (one node) of a wallclock Argus deployment."""

    def __init__(
        self,
        node_name: str,
        time_unit: float = 0.001,
        stream_config: Optional[StreamConfig] = None,
        tracing: bool = False,
        process_spawn_overhead: float = 0.0,
    ) -> None:
        self.node_name = node_name
        self.env = Environment()
        if tracing:
            from repro.obs.trace import Tracer

            Tracer.install(self.env)
        self.driver = WallclockDriver(self.env, time_unit=time_unit)
        self.loop = self.driver.loop
        self.network = TcpNetwork(self.driver, node_name)
        self.node = self.network.add_node(node_name)
        self.stream_config = stream_config or StreamConfig()
        self.process_spawn_overhead = process_spawn_overhead
        self.guardians: Dict[str, Any] = {}
        #: (guardian, handler, group) -> descriptor for remote handlers.
        self._topology: Dict[Tuple[str, str, Optional[str]], PortDescriptor] = {}
        self.port: Optional[int] = None

    # ------------------------------------------------------------------
    # World building (the ArgusSystem facade)
    # ------------------------------------------------------------------
    def create_guardian(self, name: str, node: Optional[str] = None):
        """Create a guardian on this host's node.

        *node* is accepted for signature compatibility with
        :class:`ArgusSystem` but must be absent or equal to this host's
        node — a guardian lives in the process that created it.
        """
        from repro.entities.guardian import Guardian

        if node is not None and node != self.node_name:
            raise ValueError(
                "guardian %r cannot live on %r: this process is node %r"
                % (name, node, self.node_name)
            )
        if name in self.guardians:
            raise ValueError("guardian %r already exists" % (name,))
        guardian = Guardian(self, name, self.node)
        self.guardians[name] = guardian
        return guardian

    def guardian(self, name: str):
        try:
            return self.guardians[name]
        except KeyError:
            raise KeyError("no guardian named %r" % (name,)) from None

    def declare(
        self,
        guardian_name: str,
        handler_name: str,
        handler_type: Any,
        node: str,
        group: str = "main",
    ) -> PortDescriptor:
        """Declare a handler living on another process, making it
        resolvable through :meth:`lookup` exactly like a local one."""
        descriptor = PortDescriptor(
            node=node,
            group_address="g:%s" % guardian_name,
            group_id=group,
            port_id=handler_name,
            fingerprint=type_fingerprint(handler_type),
            handler_type=handler_type,
        )
        self._topology[(guardian_name, handler_name, group)] = descriptor
        self._topology.setdefault((guardian_name, handler_name, None), descriptor)
        return descriptor

    def lookup(
        self, guardian_name: str, handler_name: str, group: Optional[str] = None
    ) -> PortDescriptor:
        """Resolve a handler: local guardians first, then declarations."""
        local = self.guardians.get(guardian_name)
        if local is not None:
            return local.descriptor(handler_name, group)
        descriptor = self._topology.get((guardian_name, handler_name, group))
        if descriptor is None:
            raise KeyError(
                "no guardian %r here and no declaration for %s.%s "
                "(declare() remote handlers before lookup)"
                % (guardian_name, guardian_name, handler_name)
            )
        return descriptor

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def start(self, host: str = "127.0.0.1", port: int = 0) -> int:
        """Start accepting connections; returns the bound port."""
        self.port = self.loop.run_until_complete(self.network.listen(host, port))
        return self.port

    def set_address_book(self, book: Dict[str, Tuple[str, int]]) -> None:
        """Install ``{node_name: (host, port)}`` routes to peer processes."""
        self.network.book.update(book)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.env.now

    def run(
        self, until: Any = None, timeout: Optional[float] = None, idle_exit: bool = False
    ) -> Any:
        """Drive the world against real time (see
        :meth:`WallclockDriver.drain`)."""
        return self.driver.run(until=until, timeout=timeout, idle_exit=idle_exit)

    def pump(self, seconds: float) -> None:
        """Serve traffic for *seconds* of real time, then return."""
        self.run(until=self.env.now + seconds / self.driver.time_unit)

    def stats(self) -> Dict[str, int]:
        return self.network.stats.snapshot()

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    @property
    def tracer(self):
        return self.env.tracer

    def export_trace(self, path: str) -> int:
        if self.env.tracer is None:
            raise RuntimeError("tracing is disabled; construct RtHost(tracing=True)")
        return self.env.tracer.export_jsonl(path)

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        """Close sockets and the event loop (idempotent)."""
        self.network.close()
        if not self.loop.is_closed():
            # Let transport close callbacks run before the loop dies.
            self.loop.run_until_complete(asyncio.sleep(0))
            self.loop.close()
