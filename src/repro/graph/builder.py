"""Declarative construction of promise graphs.

A :class:`GraphBuilder` grows a DAG of registered routines::

    g = GraphBuilder()
    a = g.source("kv_add", captures=(key, delta), sched_key=key)
    b = a.then("kv_scale")                 # runs where its input lives
    s = g.collect("kv_sum2", inputs=[b, c])  # static collector: joins two

Edges are type-checked as they are drawn (a parent's output row must
match the child's input row), and cycles are impossible by construction:
``then``/``collect`` only ever create *new* nodes downstream of existing
handles.  ``compile()`` freezes the DAG into the flat
:class:`~repro.graph.codec.TreeNode` trees the runtime ships — a shared
collector is duplicated under each parent (the runtime joins the copies
by node id), and leaves are auto-emitted so every graph produces at
least one observable result.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from repro.graph.codec import (
    FLAG_COLLECTOR,
    FLAG_EMIT,
    RoutineSpec,
    TreeNode,
    routine,
)

__all__ = ["GraphBuilder", "GraphError", "NodeHandle"]


class GraphError(Exception):
    """Raised for malformed graph construction."""


class NodeHandle:
    """A node under construction; the fluent surface of the builder."""

    __slots__ = (
        "_builder",
        "spec",
        "node_id",
        "sched_key",
        "captures",
        "n_inputs",
        "_collector",
        "_emit",
        "emit_tag",
        "_children",
        "_n_parents",
    )

    def __init__(
        self,
        builder: "GraphBuilder",
        spec: RoutineSpec,
        node_id: int,
        sched_key: int,
        captures: Tuple[Any, ...],
        n_inputs: int,
        collector: bool,
    ) -> None:
        self._builder = builder
        self.spec = spec
        self.node_id = node_id
        self.sched_key = sched_key
        self.captures = captures
        self.n_inputs = n_inputs
        self._collector = collector
        self._emit = False
        self.emit_tag: Optional[str] = None
        self._children: List[Tuple[int, "NodeHandle"]] = []
        self._n_parents = 0

    def then(
        self,
        name: str,
        captures: Sequence[Any] = (),
        sched_key: Optional[int] = None,
    ) -> "NodeHandle":
        """A child routine fed by this node's outputs.

        With no explicit ``sched_key`` the child inherits the parent's —
        it runs on the same shard unless its ``node_func`` migrates it.
        Calling ``then`` several times on one handle fans the outputs out
        to several independent children.
        """
        spec = routine(name)
        if self.spec.output_types != spec.input_types:
            raise GraphError(
                "%s outputs %r do not feed %s inputs %r"
                % (self.spec.name, self.spec.output_types, name, spec.input_types)
            )
        child = self._builder._make(
            spec,
            self.sched_key if sched_key is None else sched_key,
            tuple(captures),
            n_inputs=1,
            collector=False,
        )
        self._children.append((0, child))
        child._n_parents += 1
        return child

    def emit(self, tag: Optional[str] = None) -> "NodeHandle":
        """Report this node's outputs back to the origin as a promise."""
        self._emit = True
        if tag is not None:
            self.emit_tag = tag
        return self

    def __repr__(self) -> str:
        return "<NodeHandle #%d %s>" % (self.node_id, self.spec.name)


class GraphBuilder:
    """Accumulates a promise DAG and freezes it into routine trees."""

    def __init__(self) -> None:
        self._handles: List[NodeHandle] = []

    def _make(
        self,
        spec: RoutineSpec,
        sched_key: int,
        captures: Tuple[Any, ...],
        n_inputs: int,
        collector: bool,
    ) -> NodeHandle:
        if len(captures) != len(spec.capture_types):
            raise GraphError(
                "%s takes %d captures, got %d"
                % (spec.name, len(spec.capture_types), len(captures))
            )
        handle = NodeHandle(
            self, spec, len(self._handles), sched_key, captures, n_inputs, collector
        )
        self._handles.append(handle)
        return handle

    def source(
        self, name: str, captures: Sequence[Any] = (), sched_key: int = 0
    ) -> NodeHandle:
        """A root routine: all of its data arrives via captures."""
        spec = routine(name)
        if spec.input_types:
            raise GraphError(
                "source routine %s declares inputs %r; feed it with then()/collect()"
                % (name, spec.input_types)
            )
        return self._make(spec, sched_key, tuple(captures), n_inputs=0, collector=False)

    def collect(
        self,
        name: str,
        inputs: Sequence[NodeHandle],
        captures: Sequence[Any] = (),
        sched_key: int = 0,
    ) -> NodeHandle:
        """A static collector: fires once every input handle has delivered.

        The routine's ``fn`` receives the deliveries as a slot-ordered
        list of output tuples.  Collectors route by their static
        ``sched_key`` only (a ``node_func`` cannot move a join whose
        inputs arrive independently), so pick the key of the shard that
        owns most of the join's data.
        """
        spec = routine(name)
        if len(inputs) < 2:
            raise GraphError("collector %s needs at least two inputs" % (name,))
        if len(inputs) > 255:
            raise GraphError("collector %s joins too many inputs" % (name,))
        for handle in inputs:
            if handle._builder is not self:
                raise GraphError("collector input %r belongs to another builder" % (handle,))
            if handle.spec.output_types != spec.input_types:
                raise GraphError(
                    "%s outputs %r do not feed collector %s inputs %r"
                    % (handle.spec.name, handle.spec.output_types, name, spec.input_types)
                )
        child = self._make(
            spec, sched_key, tuple(captures), n_inputs=len(inputs), collector=True
        )
        for slot, parent in enumerate(inputs):
            parent._children.append((slot, child))
            child._n_parents += 1
        return child

    # ------------------------------------------------------------------
    # Freezing
    # ------------------------------------------------------------------
    def compile(self) -> Tuple[List[TreeNode], List[Tuple[int, str, RoutineSpec]]]:
        """Freeze into (root trees, emitted nodes).

        Returns the root :class:`TreeNode` per parentless handle plus a
        ``(node_id, tag, spec)`` row for every emitting node.  Leaves
        with no explicit ``emit()`` are auto-emitted under a default tag
        so no computation disappears silently.
        """
        if not self._handles:
            raise GraphError("empty graph")
        emits: List[Tuple[int, str, RoutineSpec]] = []
        frozen = {}
        for handle in self._handles:
            if not handle._children and not handle._emit:
                handle._emit = True
            if handle._emit:
                tag = handle.emit_tag
                if tag is None:
                    tag = "%s#%d" % (handle.spec.name, handle.node_id)
                emits.append((handle.node_id, tag, handle.spec))
            if len(handle._children) > 255:
                raise GraphError(
                    "node %r fans out to too many children" % (handle,)
                )

        def freeze(handle: NodeHandle) -> TreeNode:
            node = frozen.get(handle.node_id)
            if node is None:
                flags = (FLAG_COLLECTOR if handle._collector else 0) | (
                    FLAG_EMIT if handle._emit else 0
                )
                node = TreeNode(
                    handle.spec,
                    handle.node_id,
                    handle.sched_key,
                    flags,
                    handle.n_inputs,
                    handle.captures,
                    tuple(
                        (slot, freeze(child)) for slot, child in handle._children
                    ),
                )
                frozen[handle.node_id] = node
            return node

        roots = [freeze(h) for h in self._handles if h._n_parents == 0]
        return roots, emits
