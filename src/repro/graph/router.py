"""Scheduling-key to shard routing.

Sharding must agree across every guardian and across both ends of a
migration, so the hash is a fixed integer mix (splitmix64's finalizer) —
never Python's randomized ``hash()``.  The same keys therefore land on
the same shards in every run, which the deterministic benchmarks and the
seed-replayable chaos campaigns rely on.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

__all__ = ["ShardRouter", "mix64"]

_MASK = (1 << 64) - 1


def mix64(x: int) -> int:
    """splitmix64 finalizer: a well-distributed 64-bit mix of *x*."""
    x &= _MASK
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & _MASK
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & _MASK
    x ^= x >> 31
    return x


class ShardRouter:
    """Maps scheduling keys onto a fixed group of shard guardians."""

    __slots__ = ("shard_names", "_index_of")

    def __init__(self, shard_names: Sequence[str]) -> None:
        if not shard_names:
            raise ValueError("a shard group needs at least one guardian")
        self.shard_names: Tuple[str, ...] = tuple(shard_names)
        self._index_of: Dict[str, int] = {
            name: i for i, name in enumerate(self.shard_names)
        }
        if len(self._index_of) != len(self.shard_names):
            raise ValueError("duplicate shard guardian names")

    def __len__(self) -> int:
        return len(self.shard_names)

    def shard_index(self, sched_key: int) -> int:
        """The shard slot *sched_key* hashes to."""
        return mix64(sched_key) % len(self.shard_names)

    def shard_name(self, sched_key: int) -> str:
        """The guardian owning *sched_key*."""
        return self.shard_names[self.shard_index(sched_key)]

    def index_of(self, guardian_name: str) -> int:
        """The slot of a shard guardian (KeyError if not a shard)."""
        return self._index_of[guardian_name]

    def __repr__(self) -> str:
        return "<ShardRouter %s>" % (list(self.shard_names),)
