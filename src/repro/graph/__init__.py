"""Promise graphs: declarative call DAGs partitioned across sharded guardians.

The paper's streams pipeline *one* caller's calls to *one* port group; a
promise graph generalises that to a whole dataflow DAG.  The program
declares the computation once (:mod:`repro.graph.builder`), the runtime
hashes each routine's scheduling key onto a shard (:mod:`repro.graph.router`),
encodes the remaining subtree as a flat routine tree on the compiled
codecs (:mod:`repro.graph.codec`), and ships it over ordinary call
streams to execute where its data lives (:mod:`repro.graph.runtime`).
Routines that discover — from their actual inputs — that they belong on
another shard migrate by re-shipping their subtree; routines bound for
the same shard in the same epoch travel together in one batch frame.
"""

from repro.graph.builder import GraphBuilder, GraphError, NodeHandle
from repro.graph.codec import (
    FLAG_COLLECTOR,
    FLAG_EMIT,
    RoutineSpec,
    TreeNode,
    register_routine,
    routine,
)
from repro.graph.router import ShardRouter, mix64
from repro.graph.runtime import (
    EXEC_HANDLER,
    EXEC_ONE_HANDLER,
    GRAPH_GROUP,
    RESULT_HANDLER,
    GraphRuntime,
)

__all__ = [
    "EXEC_HANDLER",
    "EXEC_ONE_HANDLER",
    "FLAG_COLLECTOR",
    "FLAG_EMIT",
    "GRAPH_GROUP",
    "GraphBuilder",
    "GraphError",
    "GraphRuntime",
    "NodeHandle",
    "RESULT_HANDLER",
    "RoutineSpec",
    "ShardRouter",
    "TreeNode",
    "mix64",
    "register_routine",
    "routine",
]
