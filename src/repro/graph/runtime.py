"""Execution engine for promise graphs over sharded guardians.

The runtime installs one ``graph`` port group on every shard guardian:

``exec``      takes a batch frame (an epoch of routine deliveries), runs
              every unit where its data lives, and cascades the leftover
              subtrees — one frame per downstream shard, shipped as a
              :data:`~repro.streams.wire.KIND_BATCH` entry so a normal
              epoch needs no reply beyond the completion watermark;
``exec_one``  the naive baseline: one delivery in, fire-or-accumulate,
              outputs back — a full RPC round trip per DAG edge.

The *origin* guardian (where :meth:`GraphRuntime.submit` runs) gets a
``graph_result`` handler that resolves the submission's promises from
incoming result frames.

Execution placement: each delivery routes to the shard its scheduling
key hashes to.  A routine with a ``node_func`` recomputes the key from
its actual inputs — if that lands elsewhere, the delivery *migrates*
(the subtree re-ships instead of executing here).  Collectors route by
their static key only, so all their independent inputs meet in one
guardian's state.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, Iterable, List, Tuple

from repro.core.exceptions import Unavailable
from repro.core.promise import Promise
from repro.graph.builder import GraphBuilder, GraphError
from repro.graph.codec import (
    FRAME_BATCHING,
    TreeNode,
    decode_batch_frame,
    decode_result_frame,
    decode_unit_frame,
    encode_batch_frame,
    encode_result_frame,
    encode_unit_frame,
)
from repro.graph.router import ShardRouter
from repro.types.signatures import STRING, HandlerType, PromiseType

__all__ = [
    "EXEC_HANDLER",
    "EXEC_ONE_HANDLER",
    "GRAPH_GROUP",
    "RESULT_HANDLER",
    "GraphRuntime",
]

GRAPH_GROUP = "graph"
EXEC_HANDLER = "exec"
EXEC_ONE_HANDLER = "exec_one"
RESULT_HANDLER = "graph_result"

#: Frames travel as strings through the ordinary argument codecs; the
#: latin-1 bijection maps frame bytes onto code points losslessly.
_EXEC_TYPE = HandlerType(args=[STRING])
_EXEC_ONE_TYPE = HandlerType(args=[STRING], returns=[STRING])
_RESULT_TYPE = HandlerType(args=[STRING])


def _to_wire(frame: bytes) -> str:
    return frame.decode("latin-1")


def _from_wire(text: str) -> bytes:
    return text.encode("latin-1")


class _ShardEngine:
    """Per-incoming-frame execution state on one shard.

    Outgoing units and results buffer here while the frame's deliveries
    run, then flush as one frame per destination (the epoch batch) or
    one frame per delivery (batching off).  Buffers are per-engine, so
    concurrently executing frames never interleave their epochs.
    """

    __slots__ = (
        "runtime",
        "ctx",
        "graph_id",
        "origin",
        "epoch",
        "batching",
        "rpc",
        "my_index",
        "my_name",
        "out_units",
        "out_results",
    )

    def __init__(
        self,
        runtime: "GraphRuntime",
        ctx: Any,
        graph_id: int,
        origin: str,
        epoch: int,
        batching: bool,
        rpc: bool = False,
    ) -> None:
        self.runtime = runtime
        self.ctx = ctx
        self.graph_id = graph_id
        self.origin = origin
        self.epoch = epoch
        self.batching = batching
        self.rpc = rpc
        self.my_name = ctx.guardian.name
        self.my_index = runtime.router.index_of(self.my_name)
        self.out_units: Dict[int, List[Tuple[int, TreeNode, Tuple[Any, ...]]]] = {}
        self.out_results: List[Tuple[int, str, Tuple[Any, ...]]] = []

    def deliver(self, slot: int, node: TreeNode, values: Tuple[Any, ...]):
        """Route one delivery: execute here, join, or re-ship elsewhere."""
        spec = node.spec
        if not self.rpc:
            if node.is_collector or spec.node_func is None:
                key = node.sched_key
            else:
                key = spec.node_func(node.captures, values)
            dest = self.runtime.router.shard_index(key)
            if dest != self.my_index:
                self.out_units.setdefault(dest, []).append((slot, node, values))
                return
        if node.is_collector:
            state = self.ctx.guardian.state
            entry_key = ("graph.collect", self.graph_id, node.node_id)
            entry = state.get(entry_key)
            if entry is None:
                entry = state[entry_key] = {"inputs": {}, "fired": False}
            entry["inputs"][slot] = values
            if entry["fired"] or len(entry["inputs"]) < node.n_inputs:
                return
            # Mark fired *before* yielding into execution so a sibling
            # delivery racing through this guardian cannot fire it twice.
            entry["fired"] = True
            inputs = [entry["inputs"][i] for i in range(node.n_inputs)]
            yield from self.execute(node, inputs)
        else:
            yield from self.execute(node, values)

    def execute(self, node: TreeNode, fn_inputs: Any):
        """Run one routine here, then cascade its children."""
        spec = node.spec
        yield self.ctx.compute(spec.cost)
        migrated = (
            not node.is_collector
            and self.runtime.router.shard_index(node.sched_key) != self.my_index
        )
        tracer = self.ctx.env.tracer
        if tracer is not None:
            tracer.emit(
                "graph.routine",
                shard=self.my_name,
                graph=self.graph_id,
                node=node.node_id,
                callback=spec.name,
                cost=spec.cost,
                migrated=migrated,
            )
        outputs = spec.fn(self.ctx.guardian.state, node.captures, fn_inputs)
        outputs = () if outputs is None else tuple(outputs)
        if node.wants_emit or self.rpc:
            self.out_results.append((node.node_id, spec.name, outputs))
        for slot, child in node.children:
            yield from self.deliver(slot, child, outputs)

    def flush(self) -> None:
        """Ship buffered units/results, one frame per destination."""
        router = self.runtime.router
        for dest_index in sorted(self.out_units):
            units = self.out_units[dest_index]
            dest = router.shard_names[dest_index]
            ref = self.ctx.lookup(dest, EXEC_HANDLER, group=GRAPH_GROUP)
            if self.batching:
                frame = encode_batch_frame(
                    self.graph_id, self.origin, self.epoch, FRAME_BATCHING, units
                )
                ref.batch(_to_wire(frame))
                self.runtime._emit_epoch(self.ctx, self.my_name, dest, self.epoch, len(units))
            else:
                for unit in units:
                    frame = encode_batch_frame(
                        self.graph_id, self.origin, self.epoch, 0, [unit]
                    )
                    ref.batch(_to_wire(frame))
                    self.runtime._emit_epoch(self.ctx, self.my_name, dest, self.epoch, 1)
        if self.out_results and not self.rpc:
            ref = self.ctx.lookup(self.origin, RESULT_HANDLER, group=GRAPH_GROUP)
            if self.batching:
                frame = encode_result_frame(self.graph_id, self.out_results)
                ref.batch(_to_wire(frame))
                self.runtime._emit_epoch(
                    self.ctx, self.my_name, self.origin, self.epoch, len(self.out_results)
                )
            else:
                for result in self.out_results:
                    ref.batch(_to_wire(encode_result_frame(self.graph_id, [result])))
                    self.runtime._emit_epoch(
                        self.ctx, self.my_name, self.origin, self.epoch, 1
                    )


class GraphRuntime:
    """Client- and shard-side machinery for one shard group."""

    def __init__(self, system: Any, shard_names: Iterable[str], origin: str) -> None:
        self.system = system
        self.router = ShardRouter(tuple(shard_names))
        self.origin = origin
        #: (graph_id, node_id) -> unresolved promise on the origin.
        self._pending: Dict[Tuple[int, int], Promise] = {}

    # ------------------------------------------------------------------
    # Installation
    # ------------------------------------------------------------------
    def install_shard(self, guardian: Any) -> None:
        """Install the graph execution handlers on one shard guardian."""
        guardian.create_handler(
            EXEC_HANDLER, _EXEC_TYPE, self._exec_impl, group=GRAPH_GROUP
        )
        guardian.create_handler(
            EXEC_ONE_HANDLER, _EXEC_ONE_TYPE, self._exec_one_impl, group=GRAPH_GROUP
        )

    def install_origin(self, guardian: Any) -> None:
        """Install the result sink on the submitting guardian."""
        guardian.create_handler(
            RESULT_HANDLER, _RESULT_TYPE, self._result_impl, group=GRAPH_GROUP
        )

    # ------------------------------------------------------------------
    # Shard handlers
    # ------------------------------------------------------------------
    def _exec_impl(self, ctx: Any, frame_text: str):
        graph_id, origin, epoch, flags, units = decode_batch_frame(
            _from_wire(frame_text)
        )
        engine = _ShardEngine(
            self, ctx, graph_id, origin, epoch, batching=bool(flags & FRAME_BATCHING)
        )
        for slot, node, values in units:
            yield from engine.deliver(slot, node, values)
        engine.flush()

    def _exec_one_impl(self, ctx: Any, frame_text: str):
        graph_id, origin, slot, node, values = decode_unit_frame(
            _from_wire(frame_text)
        )
        engine = _ShardEngine(
            self, ctx, graph_id, origin, epoch=0, batching=False, rpc=True
        )
        yield from engine.deliver(slot, node, values)
        return _to_wire(encode_result_frame(graph_id, engine.out_results))

    def _result_impl(self, ctx: Any, frame_text: str):
        graph_id, results = decode_result_frame(_from_wire(frame_text))
        for node_id, _name, outputs in results:
            promise = self._pending.pop((graph_id, node_id), None)
            if promise is not None and not promise.ready():
                promise.resolve_normal(*outputs)
        return
        yield  # unreachable: makes this handler a generator like the rest

    def abandon(self, reason: str = "graph result never arrived") -> int:
        """Resolve every still-pending submission promise to ``unavailable``.

        The give-up half of a bounded wait: a client that has slept its
        settle budget calls this so lost frames (a crashed shard, a
        broken cascade) break their promises instead of stranding them —
        exactly the paper's rule that communication failure maps to the
        ``unavailable`` condition.  Returns how many promises it broke;
        result frames that arrive later find nothing pending and are
        dropped.
        """
        count = 0
        for key in sorted(self._pending):
            promise = self._pending.pop(key)
            if not promise.ready():
                promise.resolve_exceptional(Unavailable(reason))
                count += 1
        return count

    # ------------------------------------------------------------------
    # Client surface
    # ------------------------------------------------------------------
    def _root_shard(self, root: TreeNode) -> int:
        key = root.sched_key
        if root.spec.node_func is not None and not root.is_collector:
            key = root.spec.node_func(root.captures, ())
        return self.router.shard_index(key)

    def submit(
        self,
        ctx: Any,
        graph: GraphBuilder,
        epoch: int = 0,
        batching: bool = True,
    ) -> Dict[str, Promise]:
        """Ship *graph* to its shards; promises per emitting node, by tag.

        With ``batching`` on, all roots bound for one shard travel as a
        single epoch frame (and the shards batch their own cascades the
        same way); off, every delivery is its own frame — same DAG, same
        placement, strictly more wire messages.
        """
        roots, emits = graph.compile()
        graph_id = self.system.env.new_serial("graph")
        promises: Dict[str, Promise] = {}
        for node_id, tag, spec in emits:
            if tag in promises:
                raise GraphError("duplicate emit tag %r" % (tag,))
            promise = Promise(
                ctx.env,
                ptype=PromiseType(returns=spec.output_types),
                label="graph:%s" % tag,
            )
            self._pending[(graph_id, node_id)] = promise
            promises[tag] = promise
        per_shard: Dict[int, List[Tuple[int, TreeNode, Tuple[Any, ...]]]] = {}
        for root in roots:
            per_shard.setdefault(self._root_shard(root), []).append((0, root, ()))
        for index in sorted(per_shard):
            units = per_shard[index]
            dest = self.router.shard_names[index]
            ref = ctx.lookup(dest, EXEC_HANDLER, group=GRAPH_GROUP)
            if batching:
                frame = encode_batch_frame(
                    graph_id, self.origin, epoch, FRAME_BATCHING, units
                )
                ref.batch(_to_wire(frame))
                self._emit_epoch(ctx, self.origin, dest, epoch, len(units))
            else:
                for unit in units:
                    frame = encode_batch_frame(graph_id, self.origin, epoch, 0, [unit])
                    ref.batch(_to_wire(frame))
                    self._emit_epoch(ctx, self.origin, dest, epoch, 1)
        return promises

    def run_rpc(self, ctx: Any, graph: GraphBuilder):
        """Drive the same DAG with one blocking RPC per edge (baseline).

        A generator for client processes: ``results = yield from
        runtime.run_rpc(ctx, g)``.  The client walks the DAG itself —
        every edge is a round trip carrying a single-node tree, and
        every join input is its own call against the collector's shard.
        Returns outputs keyed by emit tag, like :meth:`submit` resolves.
        """
        roots, emits = graph.compile()
        emit_tags = {node_id: tag for node_id, tag, _spec in emits}
        graph_id = self.system.env.new_serial("graph")
        results: Dict[str, Tuple[Any, ...]] = {}
        queue = deque((0, root, ()) for root in roots)
        while queue:
            slot, node, values = queue.popleft()
            key = node.sched_key
            if node.spec.node_func is not None and not node.is_collector:
                key = node.spec.node_func(node.captures, values)
            dest = self.router.shard_name(key)
            ref = ctx.lookup(dest, EXEC_ONE_HANDLER, group=GRAPH_GROUP)
            frame = encode_unit_frame(
                graph_id, self.origin, slot, node.without_children(), values
            )
            reply = yield ref.call(_to_wire(frame))
            _graph_id, fired = decode_result_frame(_from_wire(reply))
            for _node_id, _name, outputs in fired:
                tag = emit_tags.get(node.node_id)
                if tag is not None:
                    results[tag] = outputs
                for child_slot, child in node.children:
                    queue.append((child_slot, child, outputs))
        return results

    # ------------------------------------------------------------------
    # Tracing
    # ------------------------------------------------------------------
    def _emit_epoch(self, ctx: Any, src: str, dst: str, epoch: int, units: int) -> None:
        tracer = ctx.env.tracer
        if tracer is not None:
            tracer.emit("graph.epoch", shard=src, dst=dst, epoch=epoch, units=units)

    def pending_count(self) -> int:
        """Unresolved submissions (for tests and liveness checks)."""
        return len(self._pending)

    def __repr__(self) -> str:
        return "<GraphRuntime %s origin=%s>" % (list(self.router.shard_names), self.origin)
