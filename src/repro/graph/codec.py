"""Flat routine-tree codec and routine registry for promise graphs.

A shipped graph fragment is a *routine tree*: the node to run next plus
the entire subtree that depends on it.  Trees travel inside three frame
kinds, all built on the compiled flat codecs of :mod:`repro.encoding.xrep`
(captures, inputs and outputs are encoded by the registered routine's
compiled per-type encoders — no per-value isinstance dispatch on the hot
path):

``GB``  batch frame    one epoch of units bound for one shard
``GU``  unit frame     a single delivery (the per-edge RPC baseline)
``GR``  result frame   emitted node outputs flowing back to the origin

Like the rest of the encoding layer, decoding is *total*: any truncated
or corrupted buffer raises :class:`~repro.encoding.errors.DecodeError`,
never an arbitrary exception — the graph fuzz suite pins this.

Routines themselves never travel: the wire carries the routine's *name*,
and both ends must have registered the same routine (same callback, same
type row) ahead of time.  This mirrors the paper's stance on user code in
value transmission — behaviour is installed, only data moves.
"""

from __future__ import annotations

import struct
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.encoding.errors import DecodeError, EncodeError
from repro.encoding.xrep import (
    _decode_str_flat,
    _encode_str,
    compile_decoder,
    compile_encoder,
)
from repro.types.signatures import Type

__all__ = [
    "FLAG_COLLECTOR",
    "FLAG_EMIT",
    "FRAME_BATCHING",
    "RoutineSpec",
    "TreeNode",
    "register_routine",
    "routine",
    "encode_tree",
    "decode_tree",
    "encode_batch_frame",
    "decode_batch_frame",
    "encode_unit_frame",
    "decode_unit_frame",
    "encode_result_frame",
    "decode_result_frame",
]

_INT = struct.Struct(">q")
_LEN = struct.Struct(">I")
_SLOT = struct.Struct(">H")

#: Node flag: the node joins several inputs and fires once all arrive.
FLAG_COLLECTOR = 0x01
#: Node flag: the node's outputs are reported back to the origin guardian.
FLAG_EMIT = 0x02
_NODE_FLAGS = FLAG_COLLECTOR | FLAG_EMIT

#: Batch-frame flag: downstream hops should also batch per destination.
FRAME_BATCHING = 0x01
_FRAME_FLAGS = FRAME_BATCHING

_VERSION = 1
_MAGIC_BATCH = b"GB"
_MAGIC_UNIT = b"GU"
_MAGIC_RESULT = b"GR"

#: Recursion guard: no sane graph nests this deep; a corrupted child
#: count must not be able to drive the decoder into unbounded recursion.
_MAX_DEPTH = 64

#: Smallest possible encoded node: empty name (4) + node_id (8) +
#: sched_key (8) + flags (1) + n_inputs (1) + n_children (1).
_MIN_NODE_BYTES = 23
#: Smallest possible unit: slot (2) + minimal node.
_MIN_UNIT_BYTES = 2 + _MIN_NODE_BYTES
#: Smallest possible result: node_id (8) + empty name (4).
_MIN_RESULT_BYTES = 12


class RoutineSpec:
    """A registered graph routine: the unit of remote execution.

    ``fn(state, captures, inputs)`` runs on the destination guardian with
    that guardian's persistent ``state`` dict, the captures shipped in the
    tree, and the delivered input values — a tuple for ordinary nodes, a
    slot-ordered list of tuples for collectors.  It returns the output
    tuple.  ``node_func(captures, inputs)``, when given, recomputes the
    scheduling key from the *actual* inputs; a delivery whose recomputed
    key hashes to a different shard migrates there instead of executing.
    """

    __slots__ = (
        "name",
        "fn",
        "capture_types",
        "input_types",
        "output_types",
        "node_func",
        "cost",
        "_capture_encoders",
        "_capture_decoders",
        "_input_encoders",
        "_input_decoders",
        "_output_encoders",
        "_output_decoders",
    )

    def __init__(
        self,
        name: str,
        fn: Callable[..., Tuple[Any, ...]],
        capture_types: Sequence[Type],
        input_types: Sequence[Type],
        output_types: Sequence[Type],
        node_func: Optional[Callable[..., int]] = None,
        cost: float = 0.05,
    ) -> None:
        self.name = name
        self.fn = fn
        self.capture_types = tuple(capture_types)
        self.input_types = tuple(input_types)
        self.output_types = tuple(output_types)
        self.node_func = node_func
        self.cost = cost
        self._capture_encoders = tuple(compile_encoder(t) for t in self.capture_types)
        self._capture_decoders = tuple(compile_decoder(t) for t in self.capture_types)
        self._input_encoders = tuple(compile_encoder(t) for t in self.input_types)
        self._input_decoders = tuple(compile_decoder(t) for t in self.input_types)
        self._output_encoders = tuple(compile_encoder(t) for t in self.output_types)
        self._output_decoders = tuple(compile_decoder(t) for t in self.output_types)

    def __repr__(self) -> str:
        return "<RoutineSpec %s/%d->%d>" % (
            self.name,
            len(self.input_types),
            len(self.output_types),
        )


_REGISTRY: Dict[str, RoutineSpec] = {}


def register_routine(
    name: str,
    fn: Callable[..., Tuple[Any, ...]],
    capture_types: Sequence[Type] = (),
    input_types: Sequence[Type] = (),
    output_types: Sequence[Type] = (),
    node_func: Optional[Callable[..., int]] = None,
    cost: float = 0.05,
) -> RoutineSpec:
    """Register (or re-register) a routine under *name*.

    The latest registration wins; both ends of a wire must agree on the
    type row or decoding fails.  Routines must be deterministic functions
    of ``(state, captures, inputs)`` — they may be re-executed by crash
    recovery at a higher level.
    """
    for tp in tuple(capture_types) + tuple(input_types) + tuple(output_types):
        if not isinstance(tp, Type):
            raise TypeError("routine types must be Types, got %r" % (tp,))
    spec = RoutineSpec(name, fn, capture_types, input_types, output_types, node_func, cost)
    _REGISTRY[name] = spec
    return spec


def routine(name: str) -> RoutineSpec:
    """The registered routine named *name* (KeyError if absent)."""
    return _REGISTRY[name]


class TreeNode:
    """One node of a flat routine tree.

    ``children`` is a tuple of ``(slot, TreeNode)`` edges: the parent's
    outputs are delivered into the child's input slot *slot*.  A shared
    collector appears as a child under each of its parents — the encoded
    tree duplicates it, and the runtime joins the copies by ``node_id``
    in guardian state.
    """

    __slots__ = ("spec", "node_id", "sched_key", "flags", "n_inputs", "captures", "children")

    def __init__(
        self,
        spec: RoutineSpec,
        node_id: int,
        sched_key: int,
        flags: int,
        n_inputs: int,
        captures: Tuple[Any, ...],
        children: Tuple[Tuple[int, "TreeNode"], ...] = (),
    ) -> None:
        self.spec = spec
        self.node_id = node_id
        self.sched_key = sched_key
        self.flags = flags
        self.n_inputs = n_inputs
        self.captures = tuple(captures)
        self.children = tuple(children)

    @property
    def is_collector(self) -> bool:
        return bool(self.flags & FLAG_COLLECTOR)

    @property
    def wants_emit(self) -> bool:
        return bool(self.flags & FLAG_EMIT)

    def without_children(self) -> "TreeNode":
        """A copy of this node alone (the per-edge RPC baseline ships these)."""
        return TreeNode(
            self.spec,
            self.node_id,
            self.sched_key,
            self.flags,
            self.n_inputs,
            self.captures,
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TreeNode)
            and self.spec.name == other.spec.name
            and self.node_id == other.node_id
            and self.sched_key == other.sched_key
            and self.flags == other.flags
            and self.n_inputs == other.n_inputs
            and self.captures == other.captures
            and self.children == other.children
        )

    def __hash__(self) -> int:
        return hash((self.spec.name, self.node_id))

    def __repr__(self) -> str:
        return "<TreeNode #%d %s key=%d children=%d>" % (
            self.node_id,
            self.spec.name,
            self.sched_key,
            len(self.children),
        )


# ----------------------------------------------------------------------
# Tree encoding
# ----------------------------------------------------------------------

def encode_tree(node: TreeNode, out: bytearray) -> None:
    """Append the flat encoding of *node* and its subtree to *out*."""
    if len(node.captures) != len(node.spec.capture_types):
        raise EncodeError(
            "%s carries %d captures, spec wants %d"
            % (node.spec.name, len(node.captures), len(node.spec.capture_types))
        )
    _encode_str(out, node.spec.name)
    out += _INT.pack(node.node_id)
    out += _INT.pack(node.sched_key)
    out.append(node.flags)
    out.append(node.n_inputs)
    for encoder, value in zip(node.spec._capture_encoders, node.captures):
        encoder(value, out)
    out.append(len(node.children))
    for slot, child in node.children:
        out += _SLOT.pack(slot)
        encode_tree(child, out)


def decode_tree(data: Any, offset: int, depth: int = 0) -> Tuple[TreeNode, int]:
    """Decode one tree node (and subtree) at *offset*; total on bad input."""
    if depth > _MAX_DEPTH:
        raise DecodeError("routine tree deeper than %d" % _MAX_DEPTH)
    name, offset = _decode_str_flat(data, offset)
    spec = _REGISTRY.get(name)
    if spec is None:
        raise DecodeError("unknown routine %r" % (name,))
    if offset + 18 > len(data):
        raise DecodeError("truncated tree node header")
    (node_id,) = _INT.unpack_from(data, offset)
    (sched_key,) = _INT.unpack_from(data, offset + 8)
    flags = data[offset + 16]
    n_inputs = data[offset + 17]
    offset += 18
    if flags & ~_NODE_FLAGS:
        raise DecodeError("unknown tree node flags 0x%02x" % (flags,))
    if flags & FLAG_COLLECTOR:
        if n_inputs < 2:
            raise DecodeError("collector node with %d input slots" % (n_inputs,))
    elif n_inputs > 1:
        raise DecodeError("non-collector node with %d input slots" % (n_inputs,))
    values: List[Any] = []
    for decoder in spec._capture_decoders:
        offset = decoder(data, offset, values)
    captures = tuple(values)
    if offset + 1 > len(data):
        raise DecodeError("truncated child count")
    n_children = data[offset]
    offset += 1
    if n_children * (2 + _MIN_NODE_BYTES) > len(data) - offset:
        raise DecodeError("child count %d exceeds remaining payload" % (n_children,))
    children = []
    for _ in range(n_children):
        if offset + 2 > len(data):
            raise DecodeError("truncated child slot")
        (slot,) = _SLOT.unpack_from(data, offset)
        child, offset = decode_tree(data, offset + 2, depth + 1)
        if slot >= max(1, child.n_inputs):
            raise DecodeError(
                "edge into slot %d of a %d-input node" % (slot, child.n_inputs)
            )
        if spec.output_types != child.spec.input_types:
            raise DecodeError(
                "edge type mismatch: %s outputs do not feed %s"
                % (name, child.spec.name)
            )
        children.append((slot, child))
    return (
        TreeNode(spec, node_id, sched_key, flags, n_inputs, captures, tuple(children)),
        offset,
    )


# ----------------------------------------------------------------------
# Units
# ----------------------------------------------------------------------

def _encode_unit(
    out: bytearray, slot: int, node: TreeNode, values: Tuple[Any, ...]
) -> None:
    if len(values) != len(node.spec.input_types):
        raise EncodeError(
            "%s delivery carries %d values, spec wants %d"
            % (node.spec.name, len(values), len(node.spec.input_types))
        )
    out += _SLOT.pack(slot)
    encode_tree(node, out)
    for encoder, value in zip(node.spec._input_encoders, values):
        encoder(value, out)


def _decode_unit(data: Any, offset: int) -> Tuple[int, TreeNode, Tuple[Any, ...], int]:
    if offset + 2 > len(data):
        raise DecodeError("truncated unit slot")
    (slot,) = _SLOT.unpack_from(data, offset)
    node, offset = decode_tree(data, offset + 2)
    if slot >= max(1, node.n_inputs):
        raise DecodeError(
            "unit delivers slot %d of a %d-input node" % (slot, node.n_inputs)
        )
    values: List[Any] = []
    for decoder in node.spec._input_decoders:
        offset = decoder(data, offset, values)
    return slot, node, tuple(values), offset


# ----------------------------------------------------------------------
# Frames
# ----------------------------------------------------------------------

def _decode_header(data: Any, magic: bytes) -> int:
    if len(data) < 3:
        raise DecodeError("truncated frame header")
    head = data[0:2]
    if head.__class__ is not bytes:
        head = bytes(head)
    if head != magic:
        raise DecodeError("bad frame magic %r (want %r)" % (head, magic))
    if data[2] != _VERSION:
        raise DecodeError("unsupported frame version %d" % (data[2],))
    return 3


def encode_batch_frame(
    graph_id: int,
    origin: str,
    epoch: int,
    flags: int,
    units: Sequence[Tuple[int, TreeNode, Tuple[Any, ...]]],
) -> bytes:
    """One epoch of deliveries bound for one shard, as a single frame."""
    out = bytearray(_MAGIC_BATCH)
    out.append(_VERSION)
    out.append(flags)
    out += _INT.pack(graph_id)
    _encode_str(out, origin)
    out += _INT.pack(epoch)
    out += _LEN.pack(len(units))
    for slot, node, values in units:
        _encode_unit(out, slot, node, values)
    return bytes(out)


def decode_batch_frame(
    data: Any,
) -> Tuple[int, str, int, int, List[Tuple[int, TreeNode, Tuple[Any, ...]]]]:
    """Decode a batch frame into (graph_id, origin, epoch, flags, units)."""
    offset = _decode_header(data, _MAGIC_BATCH)
    if offset + 1 > len(data):
        raise DecodeError("truncated batch flags")
    flags = data[offset]
    offset += 1
    if flags & ~_FRAME_FLAGS:
        raise DecodeError("unknown batch frame flags 0x%02x" % (flags,))
    if offset + 8 > len(data):
        raise DecodeError("truncated graph id")
    (graph_id,) = _INT.unpack_from(data, offset)
    origin, offset = _decode_str_flat(data, offset + 8)
    if offset + 12 > len(data):
        raise DecodeError("truncated epoch header")
    (epoch,) = _INT.unpack_from(data, offset)
    (count,) = _LEN.unpack_from(data, offset + 8)
    offset += 12
    if count * _MIN_UNIT_BYTES > len(data) - offset:
        raise DecodeError("unit count %d exceeds remaining payload" % (count,))
    units = []
    for _ in range(count):
        slot, node, values, offset = _decode_unit(data, offset)
        units.append((slot, node, values))
    if offset != len(data):
        raise DecodeError("%d trailing bytes after decoding" % (len(data) - offset))
    return graph_id, origin, epoch, flags, units


def encode_unit_frame(
    graph_id: int,
    origin: str,
    slot: int,
    node: TreeNode,
    values: Tuple[Any, ...],
) -> bytes:
    """A single delivery as its own frame (per-edge RPC baseline)."""
    out = bytearray(_MAGIC_UNIT)
    out.append(_VERSION)
    out += _INT.pack(graph_id)
    _encode_str(out, origin)
    _encode_unit(out, slot, node, values)
    return bytes(out)


def decode_unit_frame(data: Any) -> Tuple[int, str, int, TreeNode, Tuple[Any, ...]]:
    """Decode a unit frame into (graph_id, origin, slot, node, values)."""
    offset = _decode_header(data, _MAGIC_UNIT)
    if offset + 8 > len(data):
        raise DecodeError("truncated graph id")
    (graph_id,) = _INT.unpack_from(data, offset)
    origin, offset = _decode_str_flat(data, offset + 8)
    slot, node, values, offset = _decode_unit(data, offset)
    if offset != len(data):
        raise DecodeError("%d trailing bytes after decoding" % (len(data) - offset))
    return graph_id, origin, slot, node, values


def encode_result_frame(
    graph_id: int,
    results: Sequence[Tuple[int, str, Tuple[Any, ...]]],
) -> bytes:
    """Emitted node outputs flowing back to the origin guardian."""
    out = bytearray(_MAGIC_RESULT)
    out.append(_VERSION)
    out += _INT.pack(graph_id)
    out += _LEN.pack(len(results))
    for node_id, name, outputs in results:
        out += _INT.pack(node_id)
        _encode_str(out, name)
        spec = _REGISTRY[name]
        if len(outputs) != len(spec.output_types):
            raise EncodeError(
                "%s emitted %d outputs, spec wants %d"
                % (name, len(outputs), len(spec.output_types))
            )
        for encoder, value in zip(spec._output_encoders, outputs):
            encoder(value, out)
    return bytes(out)


def decode_result_frame(data: Any) -> Tuple[int, List[Tuple[int, str, Tuple[Any, ...]]]]:
    """Decode a result frame into (graph_id, [(node_id, name, outputs)])."""
    offset = _decode_header(data, _MAGIC_RESULT)
    if offset + 12 > len(data):
        raise DecodeError("truncated result header")
    (graph_id,) = _INT.unpack_from(data, offset)
    (count,) = _LEN.unpack_from(data, offset + 8)
    offset += 12
    if count * _MIN_RESULT_BYTES > len(data) - offset:
        raise DecodeError("result count %d exceeds remaining payload" % (count,))
    results = []
    for _ in range(count):
        if offset + 8 > len(data):
            raise DecodeError("truncated result node id")
        (node_id,) = _INT.unpack_from(data, offset)
        name, offset = _decode_str_flat(data, offset + 8)
        spec = _REGISTRY.get(name)
        if spec is None:
            raise DecodeError("unknown routine %r" % (name,))
        values: List[Any] = []
        for decoder in spec._output_decoders:
            offset = decoder(data, offset, values)
        results.append((node_id, name, tuple(values)))
    if offset != len(data):
        raise DecodeError("%d trailing bytes after decoding" % (len(data) - offset))
    return graph_id, results
