"""Errors raised by value transmission.

Either encoding or decoding may fail (the paper: user-provided translation
code "may contain errors").  The runtime maps an :class:`EncodeError` at the
caller to an immediate ``failure`` exception (no promise is created), and a
:class:`DecodeError` at the receiver to ``failure("could not decode")`` plus
a break of the receiving stream.
"""

from __future__ import annotations

__all__ = ["TransmitError", "EncodeError", "DecodeError"]


class TransmitError(Exception):
    """Base class for value-transmission failures."""


class EncodeError(TransmitError):
    """Translation from internal to external representation failed."""


class DecodeError(TransmitError):
    """Translation from external to internal representation failed."""
