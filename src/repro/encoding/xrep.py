"""The external representation: a canonical binary wire format.

Arguments and results of handler calls are passed by value: "the data are
actually sent using an external representation" (paper §3).  This module
implements that representation for the whole type algebra.  It is a real
byte format — not a pickle — so that (a) message sizes are honest inputs to
the network cost model and (b) decoding genuinely re-validates data shape,
making decode failures a natural, testable event.

Format (big-endian):

=============  =====================================================
``int``        8-byte signed
``real``       8-byte IEEE double
``bool``       1 byte (0/1)
``char``       length-prefixed UTF-8 (1-byte length)
``string``     4-byte length + UTF-8 bytes
``null``       empty
``array[t]``   4-byte count + elements
``record``     fields in declared order
``port``       encoded descriptor (node, address, port id, type hash)
=============  =====================================================
"""

from __future__ import annotations

import struct
from typing import Any, Sequence, Tuple

from repro.encoding.errors import DecodeError, EncodeError
from repro.types.signatures import (
    AnyType,
    ArrayOf,
    BoolType,
    CharType,
    HandlerType,
    IntType,
    NullType,
    PortRefType,
    RealType,
    RecordOf,
    StringType,
    Type,
    UserType,
)

__all__ = [
    "encode_value",
    "decode_value",
    "encode_values",
    "decode_values",
    "compile_encoder",
    "compile_decoder",
    "PortDescriptor",
    "type_fingerprint",
]

_INT = struct.Struct(">q")
_REAL = struct.Struct(">d")
_LEN = struct.Struct(">I")

_INT_MIN = -(2**63)
_INT_MAX = 2**63 - 1


def type_fingerprint(handler_type: HandlerType) -> str:
    """Stable textual fingerprint of a handler type, for port descriptors."""
    return handler_type.suffix()


class PortDescriptor:
    """Decoded form of a transmitted port reference.

    "Ports may be sent as arguments and results of remote calls" (§2); the
    descriptor carries enough to rebind: hosting node, transport address of
    the port group, port id, and the handler-type fingerprint for checking.
    """

    __slots__ = ("node", "group_address", "group_id", "port_id", "fingerprint", "handler_type")

    def __init__(
        self,
        node: str,
        group_address: str,
        group_id: str,
        port_id: str,
        fingerprint: str,
        handler_type: HandlerType = None,
    ) -> None:
        self.node = node
        self.group_address = group_address
        self.group_id = group_id
        self.port_id = port_id
        self.fingerprint = fingerprint
        self.handler_type = handler_type

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, PortDescriptor)
            and self.node == other.node
            and self.group_address == other.group_address
            and self.group_id == other.group_id
            and self.port_id == other.port_id
            and self.fingerprint == other.fingerprint
        )

    def __hash__(self) -> int:
        return hash(
            (self.node, self.group_address, self.group_id, self.port_id, self.fingerprint)
        )

    def __repr__(self) -> str:
        return "<PortDescriptor %s@%s/%s>" % (self.port_id, self.node, self.group_address)


def _encode_str(out: bytearray, text: str) -> None:
    data = text.encode("utf-8")
    out += _LEN.pack(len(data))
    out += data


def _decode_str(data: bytes, offset: int) -> Tuple[str, int]:
    if offset + 4 > len(data):
        raise DecodeError("truncated string length")
    (length,) = _LEN.unpack_from(data, offset)
    offset += 4
    if offset + length > len(data):
        raise DecodeError("truncated string body")
    try:
        return data[offset : offset + length].decode("utf-8"), offset + length
    except UnicodeDecodeError as exc:
        raise DecodeError("invalid UTF-8 in string: %s" % exc) from exc


def encode_value(tp: Type, value: Any, out: bytearray) -> None:
    """Append the external representation of *value* (of type *tp*)."""
    if isinstance(tp, IntType):
        if isinstance(value, bool) or not isinstance(value, int):
            raise EncodeError("expected int, got %r" % (value,))
        if not _INT_MIN <= value <= _INT_MAX:
            raise EncodeError("int out of 64-bit range: %r" % (value,))
        out += _INT.pack(value)
        return
    if isinstance(tp, RealType):
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise EncodeError("expected real, got %r" % (value,))
        out += _REAL.pack(float(value))
        return
    if isinstance(tp, BoolType):
        if not isinstance(value, bool):
            raise EncodeError("expected bool, got %r" % (value,))
        out.append(1 if value else 0)
        return
    if isinstance(tp, CharType):
        if not isinstance(value, str) or len(value) != 1:
            raise EncodeError("expected char, got %r" % (value,))
        data = value.encode("utf-8")
        out.append(len(data))
        out += data
        return
    if isinstance(tp, StringType):
        if not isinstance(value, str):
            raise EncodeError("expected string, got %r" % (value,))
        _encode_str(out, value)
        return
    if isinstance(tp, NullType):
        if value is not None:
            raise EncodeError("expected null, got %r" % (value,))
        return
    if isinstance(tp, ArrayOf):
        if not isinstance(value, (list, tuple)):
            raise EncodeError("expected array, got %r" % (value,))
        out += _LEN.pack(len(value))
        for element in value:
            encode_value(tp.element, element, out)
        return
    if isinstance(tp, RecordOf):
        if not isinstance(value, dict):
            raise EncodeError("expected record, got %r" % (value,))
        expected = tp.field_dict()
        if set(value.keys()) != set(expected.keys()):
            raise EncodeError(
                "record fields %r do not match %r"
                % (sorted(value.keys()), sorted(expected.keys()))
            )
        for fname, ftype in tp.fields:
            encode_value(ftype, value[fname], out)
        return
    if isinstance(tp, UserType):
        # User-provided translation; any error it raises is an encode error
        # (the paper: user code "may contain errors").
        try:
            external_value = tp.to_external(value)
        except Exception as exc:
            raise EncodeError(
                "user encode for %s failed: %s" % (tp.name(), exc)
            ) from exc
        encode_value(tp.external, external_value, out)
        return
    if isinstance(tp, PortRefType):
        descriptor = _port_descriptor_of(value)
        if descriptor is None:
            raise EncodeError("expected a port reference, got %r" % (value,))
        _encode_str(out, descriptor.node)
        _encode_str(out, descriptor.group_address)
        _encode_str(out, descriptor.group_id)
        _encode_str(out, descriptor.port_id)
        _encode_str(out, descriptor.fingerprint)
        return
    if isinstance(tp, AnyType):
        raise EncodeError("values of type 'any' are not transmissible")
    raise EncodeError("unknown type descriptor %r" % (tp,))


def _port_descriptor_of(value: Any) -> Any:
    if isinstance(value, PortDescriptor):
        return value
    descriptor = getattr(value, "descriptor", None)
    if isinstance(descriptor, PortDescriptor):
        return descriptor
    return None


def decode_value(tp: Type, data: bytes, offset: int) -> Tuple[Any, int]:
    """Decode one value of type *tp* at *offset*; return (value, new offset)."""
    if isinstance(tp, IntType):
        if offset + 8 > len(data):
            raise DecodeError("truncated int")
        (value,) = _INT.unpack_from(data, offset)
        return value, offset + 8
    if isinstance(tp, RealType):
        if offset + 8 > len(data):
            raise DecodeError("truncated real")
        (value,) = _REAL.unpack_from(data, offset)
        return value, offset + 8
    if isinstance(tp, BoolType):
        if offset + 1 > len(data):
            raise DecodeError("truncated bool")
        byte = data[offset]
        if byte not in (0, 1):
            raise DecodeError("invalid bool byte %r" % (byte,))
        return bool(byte), offset + 1
    if isinstance(tp, CharType):
        if offset + 1 > len(data):
            raise DecodeError("truncated char length")
        length = data[offset]
        offset += 1
        if offset + length > len(data):
            raise DecodeError("truncated char body")
        try:
            text = data[offset : offset + length].decode("utf-8")
        except UnicodeDecodeError as exc:
            raise DecodeError("invalid UTF-8 in char: %s" % exc) from exc
        if len(text) != 1:
            raise DecodeError("char decoded to %d characters" % len(text))
        return text, offset + length
    if isinstance(tp, StringType):
        return _decode_str(data, offset)
    if isinstance(tp, NullType):
        return None, offset
    if isinstance(tp, ArrayOf):
        if offset + 4 > len(data):
            raise DecodeError("truncated array count")
        (count,) = _LEN.unpack_from(data, offset)
        offset += 4
        # Sanity: a bogus count cannot claim more elements than the
        # remaining bytes could possibly hold.
        minimum = _min_encoded_size(tp.element)
        if minimum > 0 and count * minimum > len(data) - offset:
            raise DecodeError(
                "array count %d exceeds remaining payload" % (count,)
            )
        if count > 2**24:
            raise DecodeError("array count %d is implausibly large" % (count,))
        items = []
        for _ in range(count):
            element, offset = decode_value(tp.element, data, offset)
            items.append(element)
        return items, offset
    if isinstance(tp, RecordOf):
        record = {}
        for fname, ftype in tp.fields:
            record[fname], offset = decode_value(ftype, data, offset)
        return record, offset
    if isinstance(tp, UserType):
        external_value, offset = decode_value(tp.external, data, offset)
        try:
            return tp.from_external(external_value), offset
        except Exception as exc:
            raise DecodeError(
                "user decode for %s failed: %s" % (tp.name(), exc)
            ) from exc
    if isinstance(tp, PortRefType):
        node, offset = _decode_str(data, offset)
        group_address, offset = _decode_str(data, offset)
        group_id, offset = _decode_str(data, offset)
        port_id, offset = _decode_str(data, offset)
        fingerprint, offset = _decode_str(data, offset)
        expected = type_fingerprint(tp.handler_type)
        if fingerprint != expected:
            raise DecodeError(
                "port type mismatch: wire says %r, expected %r"
                % (fingerprint, expected)
            )
        return (
            PortDescriptor(
                node, group_address, group_id, port_id, fingerprint, tp.handler_type
            ),
            offset,
        )
    if isinstance(tp, AnyType):
        raise DecodeError("values of type 'any' are not transmissible")
    raise DecodeError("unknown type descriptor %r" % (tp,))


def _min_encoded_size(tp: Type) -> int:
    """A lower bound on the encoded size of any value of type *tp*."""
    if isinstance(tp, (IntType, RealType)):
        return 8
    if isinstance(tp, (BoolType, CharType)):
        return 1
    if isinstance(tp, (StringType, ArrayOf)):
        return 4
    if isinstance(tp, RecordOf):
        return sum(_min_encoded_size(ftype) for _f, ftype in tp.fields)
    if isinstance(tp, PortRefType):
        return 16  # four length-prefixed strings
    if isinstance(tp, UserType):
        return _min_encoded_size(tp.external)
    return 0


# ----------------------------------------------------------------------
# Compiled flat codecs
# ----------------------------------------------------------------------
# The tree-walking encode_value/decode_value above stay as the reference
# implementation (the fuzz suite round-trips every compiled codec against
# them), but per-call dispatch through an isinstance chain is the wrong
# cost model for the transport hot path.  compile_encoder/compile_decoder
# walk a type descriptor ONCE and return a flat closure specialized to
# it:
#
# * an encoder is ``(value, out) -> None`` appending the external
#   representation into a caller-supplied bytearray, with exact-class
#   fast paths and a slow path that reproduces the reference error
#   messages verbatim;
# * a decoder is ``(data, offset, out) -> new_offset`` appending the
#   decoded value to a caller-supplied list (no per-value result tuple)
#   and accepting bytes OR memoryview, so framed payloads can be decoded
#   in place without slicing copies.
#
# Compiled closures are cached as an attribute ON the type object — not
# in a dict keyed by type equality — because distinct UserType instances
# can compare equal while carrying different translation callables
# (see transmit.failing_user_type).


def compile_encoder(tp: Type):
    """The compiled flat encoder for *tp* (cached on the type object)."""
    try:
        return tp._compiled_encoder
    except AttributeError:
        encoder = _build_encoder(tp)
        tp._compiled_encoder = encoder
        return encoder


def compile_decoder(tp: Type):
    """The compiled flat decoder for *tp* (cached on the type object)."""
    try:
        return tp._compiled_decoder
    except AttributeError:
        decoder = _build_decoder(tp)
        tp._compiled_decoder = decoder
        return decoder


def _build_encoder(tp: Type):
    if isinstance(tp, IntType):

        def encode_int(value: Any, out: bytearray, _pack=_INT.pack) -> None:
            if value.__class__ is int:
                if _INT_MIN <= value <= _INT_MAX:
                    out += _pack(value)
                    return
                raise EncodeError("int out of 64-bit range: %r" % (value,))
            if isinstance(value, bool) or not isinstance(value, int):
                raise EncodeError("expected int, got %r" % (value,))
            if not _INT_MIN <= value <= _INT_MAX:
                raise EncodeError("int out of 64-bit range: %r" % (value,))
            out += _pack(value)

        return encode_int
    if isinstance(tp, RealType):

        def encode_real(value: Any, out: bytearray, _pack=_REAL.pack) -> None:
            if value.__class__ is float:
                out += _pack(value)
                return
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise EncodeError("expected real, got %r" % (value,))
            out += _pack(float(value))

        return encode_real
    if isinstance(tp, BoolType):

        def encode_bool(value: Any, out: bytearray) -> None:
            if value.__class__ is not bool:
                raise EncodeError("expected bool, got %r" % (value,))
            out.append(1 if value else 0)

        return encode_bool
    if isinstance(tp, CharType):

        def encode_char(value: Any, out: bytearray) -> None:
            if not isinstance(value, str) or len(value) != 1:
                raise EncodeError("expected char, got %r" % (value,))
            data = value.encode("utf-8")
            out.append(len(data))
            out += data

        return encode_char
    if isinstance(tp, StringType):

        def encode_string(value: Any, out: bytearray, _pack=_LEN.pack) -> None:
            if value.__class__ is not str and not isinstance(value, str):
                raise EncodeError("expected string, got %r" % (value,))
            data = value.encode("utf-8")
            out += _pack(len(data))
            out += data

        return encode_string
    if isinstance(tp, NullType):

        def encode_null(value: Any, out: bytearray) -> None:
            if value is not None:
                raise EncodeError("expected null, got %r" % (value,))

        return encode_null
    if isinstance(tp, ArrayOf):
        element_encoder = compile_encoder(tp.element)

        def encode_array(
            value: Any,
            out: bytearray,
            _pack=_LEN.pack,
            _element=element_encoder,
        ) -> None:
            cls = value.__class__
            if cls is not list and cls is not tuple:
                if not isinstance(value, (list, tuple)):
                    raise EncodeError("expected array, got %r" % (value,))
            out += _pack(len(value))
            for element in value:
                _element(element, out)

        return encode_array
    if isinstance(tp, RecordOf):
        field_encoders = [
            (fname, compile_encoder(ftype)) for fname, ftype in tp.fields
        ]
        expected_keys = frozenset(tp.field_dict().keys())

        def encode_record(value: Any, out: bytearray) -> None:
            if value.__class__ is not dict and not isinstance(value, dict):
                raise EncodeError("expected record, got %r" % (value,))
            if set(value.keys()) != expected_keys:
                raise EncodeError(
                    "record fields %r do not match %r"
                    % (sorted(value.keys()), sorted(expected_keys))
                )
            for fname, fencoder in field_encoders:
                fencoder(value[fname], out)

        return encode_record
    if isinstance(tp, UserType):
        external_encoder = compile_encoder(tp.external)
        to_external = tp.to_external
        type_name = tp.name()

        def encode_user(value: Any, out: bytearray) -> None:
            try:
                external_value = to_external(value)
            except Exception as exc:
                raise EncodeError(
                    "user encode for %s failed: %s" % (type_name, exc)
                ) from exc
            external_encoder(external_value, out)

        return encode_user
    if isinstance(tp, PortRefType):

        def encode_port(value: Any, out: bytearray) -> None:
            descriptor = _port_descriptor_of(value)
            if descriptor is None:
                raise EncodeError("expected a port reference, got %r" % (value,))
            _encode_str(out, descriptor.node)
            _encode_str(out, descriptor.group_address)
            _encode_str(out, descriptor.group_id)
            _encode_str(out, descriptor.port_id)
            _encode_str(out, descriptor.fingerprint)

        return encode_port
    if isinstance(tp, AnyType):

        def encode_any(value: Any, out: bytearray) -> None:
            raise EncodeError("values of type 'any' are not transmissible")

        return encode_any

    def encode_unknown(value: Any, out: bytearray, _tp=tp) -> None:
        raise EncodeError("unknown type descriptor %r" % (_tp,))

    return encode_unknown


def _decode_str_flat(data: Any, offset: int) -> Tuple[str, int]:
    """As :func:`_decode_str`, but accepts memoryview as well as bytes."""
    if offset + 4 > len(data):
        raise DecodeError("truncated string length")
    (length,) = _LEN.unpack_from(data, offset)
    offset += 4
    end = offset + length
    if end > len(data):
        raise DecodeError("truncated string body")
    chunk = data[offset:end]
    if chunk.__class__ is not bytes:
        chunk = bytes(chunk)
    try:
        return chunk.decode("utf-8"), end
    except UnicodeDecodeError as exc:
        raise DecodeError("invalid UTF-8 in string: %s" % exc) from exc


def _build_decoder(tp: Type):
    if isinstance(tp, IntType):

        def decode_int(
            data: Any, offset: int, out: list, _unpack=_INT.unpack_from
        ) -> int:
            end = offset + 8
            if end > len(data):
                raise DecodeError("truncated int")
            out.append(_unpack(data, offset)[0])
            return end

        return decode_int
    if isinstance(tp, RealType):

        def decode_real(
            data: Any, offset: int, out: list, _unpack=_REAL.unpack_from
        ) -> int:
            end = offset + 8
            if end > len(data):
                raise DecodeError("truncated real")
            out.append(_unpack(data, offset)[0])
            return end

        return decode_real
    if isinstance(tp, BoolType):

        def decode_bool(data: Any, offset: int, out: list) -> int:
            if offset + 1 > len(data):
                raise DecodeError("truncated bool")
            byte = data[offset]
            if byte > 1:
                raise DecodeError("invalid bool byte %r" % (byte,))
            out.append(byte == 1)
            return offset + 1

        return decode_bool
    if isinstance(tp, CharType):

        def decode_char(data: Any, offset: int, out: list) -> int:
            if offset + 1 > len(data):
                raise DecodeError("truncated char length")
            length = data[offset]
            offset += 1
            end = offset + length
            if end > len(data):
                raise DecodeError("truncated char body")
            chunk = data[offset:end]
            if chunk.__class__ is not bytes:
                chunk = bytes(chunk)
            try:
                text = chunk.decode("utf-8")
            except UnicodeDecodeError as exc:
                raise DecodeError("invalid UTF-8 in char: %s" % exc) from exc
            if len(text) != 1:
                raise DecodeError("char decoded to %d characters" % len(text))
            out.append(text)
            return end

        return decode_char
    if isinstance(tp, StringType):

        def decode_string(
            data: Any, offset: int, out: list, _unpack=_LEN.unpack_from
        ) -> int:
            body = offset + 4
            if body > len(data):
                raise DecodeError("truncated string length")
            end = body + _unpack(data, offset)[0]
            if end > len(data):
                raise DecodeError("truncated string body")
            chunk = data[body:end]
            if chunk.__class__ is not bytes:
                chunk = bytes(chunk)
            try:
                out.append(chunk.decode("utf-8"))
            except UnicodeDecodeError as exc:
                raise DecodeError("invalid UTF-8 in string: %s" % exc) from exc
            return end

        return decode_string
    if isinstance(tp, NullType):

        def decode_null(data: Any, offset: int, out: list) -> int:
            out.append(None)
            return offset

        return decode_null
    if isinstance(tp, ArrayOf):
        element_decoder = compile_decoder(tp.element)
        minimum = _min_encoded_size(tp.element)

        def decode_array(
            data: Any,
            offset: int,
            out: list,
            _unpack=_LEN.unpack_from,
            _element=element_decoder,
            _minimum=minimum,
        ) -> int:
            if offset + 4 > len(data):
                raise DecodeError("truncated array count")
            count = _unpack(data, offset)[0]
            offset += 4
            if _minimum > 0 and count * _minimum > len(data) - offset:
                raise DecodeError(
                    "array count %d exceeds remaining payload" % (count,)
                )
            if count > 16777216:  # 2**24, as the reference decoder
                raise DecodeError("array count %d is implausibly large" % (count,))
            items: list = []
            for _ in range(count):
                offset = _element(data, offset, items)
            out.append(items)
            return offset

        return decode_array
    if isinstance(tp, RecordOf):
        field_decoders = [
            (fname, compile_decoder(ftype)) for fname, ftype in tp.fields
        ]

        def decode_record(data: Any, offset: int, out: list) -> int:
            record = {}
            for fname, fdecoder in field_decoders:
                offset = fdecoder(data, offset, out)
                record[fname] = out.pop()
            out.append(record)
            return offset

        return decode_record
    if isinstance(tp, UserType):
        external_decoder = compile_decoder(tp.external)
        from_external = tp.from_external
        type_name = tp.name()

        def decode_user(data: Any, offset: int, out: list) -> int:
            offset = external_decoder(data, offset, out)
            external_value = out.pop()
            try:
                out.append(from_external(external_value))
            except Exception as exc:
                raise DecodeError(
                    "user decode for %s failed: %s" % (type_name, exc)
                ) from exc
            return offset

        return decode_user
    if isinstance(tp, PortRefType):
        handler_type = tp.handler_type
        expected_fingerprint = type_fingerprint(handler_type)

        def decode_port(data: Any, offset: int, out: list) -> int:
            node, offset = _decode_str_flat(data, offset)
            group_address, offset = _decode_str_flat(data, offset)
            group_id, offset = _decode_str_flat(data, offset)
            port_id, offset = _decode_str_flat(data, offset)
            fingerprint, offset = _decode_str_flat(data, offset)
            if fingerprint != expected_fingerprint:
                raise DecodeError(
                    "port type mismatch: wire says %r, expected %r"
                    % (fingerprint, expected_fingerprint)
                )
            out.append(
                PortDescriptor(
                    node,
                    group_address,
                    group_id,
                    port_id,
                    fingerprint,
                    handler_type,
                )
            )
            return offset

        return decode_port
    if isinstance(tp, AnyType):

        def decode_any(data: Any, offset: int, out: list) -> int:
            raise DecodeError("values of type 'any' are not transmissible")

        return decode_any

    def decode_unknown(data: Any, offset: int, out: list, _tp=tp) -> int:
        raise DecodeError("unknown type descriptor %r" % (_tp,))

    return decode_unknown


def encode_values(types: Sequence[Type], values: Sequence[Any]) -> bytes:
    """Encode a tuple of values (call arguments or results)."""
    if len(types) != len(values):
        raise EncodeError(
            "value count %d does not match type count %d" % (len(values), len(types))
        )
    out = bytearray()
    for tp, value in zip(types, values):
        encode_value(tp, value, out)
    return bytes(out)


def decode_values(types: Sequence[Type], data: bytes) -> Tuple[Any, ...]:
    """Decode a tuple of values; the entire buffer must be consumed."""
    offset = 0
    values = []
    for tp in types:
        value, offset = decode_value(tp, data, offset)
        values.append(value)
    if offset != len(data):
        raise DecodeError(
            "%d trailing bytes after decoding" % (len(data) - offset)
        )
    return tuple(values)
