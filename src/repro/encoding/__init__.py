"""Value transmission: external representation and codecs (paper §3)."""

from repro.encoding.errors import DecodeError, EncodeError, TransmitError
from repro.encoding.transmit import ArgsCodec, OutcomeCodec, failing_user_type
from repro.encoding.xrep import (
    PortDescriptor,
    decode_value,
    decode_values,
    encode_value,
    encode_values,
    type_fingerprint,
)

__all__ = [
    "ArgsCodec",
    "DecodeError",
    "EncodeError",
    "OutcomeCodec",
    "PortDescriptor",
    "TransmitError",
    "decode_value",
    "decode_values",
    "encode_value",
    "encode_values",
    "failing_user_type",
    "type_fingerprint",
]
