"""Codecs for call arguments and call outcomes.

The transport ships two kinds of typed payloads: the argument tuple of a
call (typed by the handler's argument list) and the outcome of a call
(typed by the handler's results and declared signals).  Both are encoded
with the external representation of :mod:`repro.encoding.xrep`.

Outcome wire format: a one-byte condition tag —

====  ===========================================
0     normal; followed by the encoded results
1     user signal; name string, then its results
2     ``unavailable``; reason string
3     ``failure``; reason string
====  ===========================================
"""

from __future__ import annotations

from typing import Any, Sequence, Tuple

from repro.core.exceptions import Failure, Signal, Unavailable
from repro.core.outcome import Outcome
from repro.encoding.errors import DecodeError, EncodeError
from repro.encoding.xrep import compile_decoder, compile_encoder
from repro.types.signatures import STRING, HandlerType, UserType

__all__ = ["ArgsCodec", "OutcomeCodec", "failing_user_type"]

_TAG_NORMAL = 0
_TAG_SIGNAL = 1
_TAG_UNAVAILABLE = 2
_TAG_FAILURE = 3

#: Compiled string codec shared by the outcome wire format's name/reason
#: fields (STRING is a module singleton, so this is the cached closure).
_encode_str = compile_encoder(STRING)
_decode_str = compile_decoder(STRING)


class ArgsCodec:
    """Encode/decode a handler call's argument tuple.

    Construction compiles one flat closure per argument type (see
    :func:`repro.encoding.xrep.compile_encoder`); encoding appends into a
    reusable scratch bytearray, so a call with *k* arguments costs *k*
    closure calls and one final ``bytes()`` copy — no per-value tuples,
    no isinstance dispatch, no intermediate buffers.
    """

    __slots__ = ("handler_type", "_encoders", "_decoders", "_buf")

    def __init__(self, handler_type: HandlerType) -> None:
        self.handler_type = handler_type
        self._encoders = [compile_encoder(tp) for tp in handler_type.args]
        self._decoders = [compile_decoder(tp) for tp in handler_type.args]
        #: Reusable encode scratch buffer; None while rented by an
        #: in-progress encode (a user type's to_external could re-enter).
        self._buf: Any = bytearray()

    @classmethod
    def for_type(cls, handler_type: HandlerType) -> "ArgsCodec":
        """The shared codec for *handler_type*, memoized on the type itself.

        Codecs are stateless w.r.t. the calls they encode, so one instance
        per handler type serves every call site (sender, receiver,
        dispatcher) instead of a fresh allocation per call — and the
        compiled closures are built once per handler type, not per call.
        """
        try:
            return handler_type._args_codec
        except AttributeError:
            codec = cls(handler_type)
            handler_type._args_codec = codec
            return codec

    def encode(self, args: Sequence[Any]) -> bytes:
        """Encode the argument tuple to its external representation."""
        encoders = self._encoders
        if len(args) != len(encoders):
            raise EncodeError(
                "value count %d does not match type count %d"
                % (len(args), len(encoders))
            )
        buf = self._buf
        if buf is None:  # re-entrant encode: fall back to a fresh buffer
            buf = bytearray()
        else:
            self._buf = None
            del buf[:]
        try:
            for encoder, value in zip(encoders, args):
                encoder(value, buf)
            return bytes(buf)
        finally:
            self._buf = buf

    def decode(self, data: Any) -> Tuple[Any, ...]:
        """Decode an argument tuple; raises DecodeError on bad data.

        *data* may be ``bytes`` or a ``memoryview`` over a framed
        payload; decoding walks offsets in place either way.
        """
        values: list = []
        offset = 0
        for decoder in self._decoders:
            offset = decoder(data, offset, values)
        if offset != len(data):
            raise DecodeError(
                "%d trailing bytes after decoding" % (len(data) - offset)
            )
        return tuple(values)


class OutcomeCodec:
    """Encode/decode a call :class:`~repro.core.outcome.Outcome`.

    Compiled like :class:`ArgsCodec`: result types and every declared
    signal's types get flat closures at construction, and decoding
    threads an offset from byte 1 instead of slicing the payload.
    """

    __slots__ = (
        "handler_type",
        "_ret_encoders",
        "_ret_decoders",
        "_signal_encoders",
        "_signal_decoders",
        "_buf",
    )

    def __init__(self, handler_type: HandlerType) -> None:
        self.handler_type = handler_type
        self._ret_encoders = [compile_encoder(tp) for tp in handler_type.returns]
        self._ret_decoders = [compile_decoder(tp) for tp in handler_type.returns]
        self._signal_encoders = {
            name: [compile_encoder(tp) for tp in types]
            for name, types in handler_type.signals.items()
        }
        self._signal_decoders = {
            name: [compile_decoder(tp) for tp in types]
            for name, types in handler_type.signals.items()
        }
        self._buf: Any = bytearray()

    @classmethod
    def for_type(cls, handler_type: HandlerType) -> "OutcomeCodec":
        """The shared codec for *handler_type* (see ArgsCodec.for_type)."""
        try:
            return handler_type._outcome_codec
        except AttributeError:
            codec = cls(handler_type)
            handler_type._outcome_codec = codec
            return codec

    def encode(self, outcome: Outcome) -> bytes:
        """Encode an outcome per the tagged wire format above."""
        buf = self._buf
        if buf is None:  # re-entrant encode
            buf = bytearray()
        else:
            self._buf = None
            del buf[:]
        try:
            if outcome.is_normal:
                buf.append(_TAG_NORMAL)
                results = outcome.results
                encoders = self._ret_encoders
                if len(results) != len(encoders):
                    raise EncodeError(
                        "value count %d does not match type count %d"
                        % (len(results), len(encoders))
                    )
                for encoder, value in zip(encoders, results):
                    encoder(value, buf)
                return bytes(buf)
            exc = outcome.exception
            if isinstance(exc, Unavailable):
                buf.append(_TAG_UNAVAILABLE)
                _encode_str(exc.reason, buf)
                return bytes(buf)
            if isinstance(exc, Failure):
                buf.append(_TAG_FAILURE)
                _encode_str(exc.reason, buf)
                return bytes(buf)
            if isinstance(exc, Signal):
                encoders = self._signal_encoders.get(exc.condition)
                if encoders is None:
                    raise EncodeError(
                        "handler raised undeclared exception %r" % (exc.condition,)
                    )
                buf.append(_TAG_SIGNAL)
                _encode_str(exc.condition, buf)
                values = exc.exception_args()
                if len(values) != len(encoders):
                    raise EncodeError(
                        "value count %d does not match type count %d"
                        % (len(values), len(encoders))
                    )
                for encoder, value in zip(encoders, values):
                    encoder(value, buf)
                return bytes(buf)
            raise EncodeError("cannot encode outcome exception %r" % (exc,))
        finally:
            self._buf = buf

    def decode(self, data: Any) -> Outcome:
        """Decode an outcome; undeclared signals raise DecodeError."""
        if not data:
            raise DecodeError("empty outcome payload")
        tag = data[0]
        if tag == _TAG_NORMAL:
            values: list = []
            offset = 1
            for decoder in self._ret_decoders:
                offset = decoder(data, offset, values)
            if offset != len(data):
                # Identical message (and count) to the reference
                # decode_values on the tag-stripped slice.
                raise DecodeError(
                    "%d trailing bytes after decoding" % (len(data) - offset)
                )
            return Outcome.normal(*values)
        if tag == _TAG_UNAVAILABLE:
            scratch: list = []
            offset = _decode_str(data, 1, scratch)
            _expect_consumed(data, offset)
            return Outcome.exceptional(Unavailable(scratch[0]))
        if tag == _TAG_FAILURE:
            scratch = []
            offset = _decode_str(data, 1, scratch)
            _expect_consumed(data, offset)
            return Outcome.exceptional(Failure(scratch[0]))
        if tag == _TAG_SIGNAL:
            scratch = []
            offset = _decode_str(data, 1, scratch)
            name = scratch.pop()
            decoders = self._signal_decoders.get(name)
            if decoders is None:
                raise DecodeError("undeclared exception %r in reply" % (name,))
            for decoder in decoders:
                offset = decoder(data, offset, scratch)
            _expect_consumed(data, offset)
            return Outcome.exceptional(Signal(name, *scratch))
        raise DecodeError("unknown outcome tag %d" % (tag,))


def _expect_consumed(data: bytes, offset: int) -> None:
    if offset != len(data):
        raise DecodeError("%d trailing bytes in outcome" % (len(data) - offset))


def failing_user_type(
    type_name: str = "fragile",
    fail_encode: bool = False,
    fail_decode: bool = False,
) -> UserType:
    """A string-backed abstract type whose codec fails on demand.

    Used by tests and the E9 benchmark to inject the paper's "encoding or
    decoding may fail" events at will: values equal to ``"poison"`` trip the
    selected stage.
    """

    def to_external(value: Any) -> str:
        if fail_encode and value == "poison":
            raise ValueError("injected encode failure")
        return str(value)

    def from_external(text: str) -> str:
        if fail_decode and text == "poison":
            raise ValueError("injected decode failure")
        return text

    return UserType(type_name, STRING, to_external, from_external)
