"""Codecs for call arguments and call outcomes.

The transport ships two kinds of typed payloads: the argument tuple of a
call (typed by the handler's argument list) and the outcome of a call
(typed by the handler's results and declared signals).  Both are encoded
with the external representation of :mod:`repro.encoding.xrep`.

Outcome wire format: a one-byte condition tag —

====  ===========================================
0     normal; followed by the encoded results
1     user signal; name string, then its results
2     ``unavailable``; reason string
3     ``failure``; reason string
====  ===========================================
"""

from __future__ import annotations

from typing import Any, Sequence, Tuple

from repro.core.exceptions import Failure, Signal, Unavailable
from repro.core.outcome import Outcome
from repro.encoding.errors import DecodeError, EncodeError
from repro.encoding.xrep import decode_value, decode_values, encode_value, encode_values
from repro.types.signatures import STRING, HandlerType, UserType

__all__ = ["ArgsCodec", "OutcomeCodec", "failing_user_type"]

_TAG_NORMAL = 0
_TAG_SIGNAL = 1
_TAG_UNAVAILABLE = 2
_TAG_FAILURE = 3


class ArgsCodec:
    """Encode/decode a handler call's argument tuple."""

    __slots__ = ("handler_type",)

    def __init__(self, handler_type: HandlerType) -> None:
        self.handler_type = handler_type

    @classmethod
    def for_type(cls, handler_type: HandlerType) -> "ArgsCodec":
        """The shared codec for *handler_type*, memoized on the type itself.

        Codecs are stateless w.r.t. the calls they encode, so one instance
        per handler type serves every call site (sender, receiver,
        dispatcher) instead of a fresh allocation per call.
        """
        try:
            return handler_type._args_codec
        except AttributeError:
            codec = cls(handler_type)
            handler_type._args_codec = codec
            return codec

    def encode(self, args: Sequence[Any]) -> bytes:
        """Encode the argument tuple to its external representation."""
        return encode_values(self.handler_type.args, args)

    def decode(self, data: bytes) -> Tuple[Any, ...]:
        """Decode an argument tuple; raises DecodeError on bad data."""
        return decode_values(self.handler_type.args, data)


class OutcomeCodec:
    """Encode/decode a call :class:`~repro.core.outcome.Outcome`."""

    __slots__ = ("handler_type",)

    def __init__(self, handler_type: HandlerType) -> None:
        self.handler_type = handler_type

    @classmethod
    def for_type(cls, handler_type: HandlerType) -> "OutcomeCodec":
        """The shared codec for *handler_type* (see ArgsCodec.for_type)."""
        try:
            return handler_type._outcome_codec
        except AttributeError:
            codec = cls(handler_type)
            handler_type._outcome_codec = codec
            return codec

    def encode(self, outcome: Outcome) -> bytes:
        """Encode an outcome per the tagged wire format above."""
        out = bytearray()
        if outcome.is_normal:
            out.append(_TAG_NORMAL)
            out += encode_values(self.handler_type.returns, outcome.results)
            return bytes(out)
        exc = outcome.exception
        if isinstance(exc, Unavailable):
            out.append(_TAG_UNAVAILABLE)
            encode_value(STRING, exc.reason, out)
            return bytes(out)
        if isinstance(exc, Failure):
            out.append(_TAG_FAILURE)
            encode_value(STRING, exc.reason, out)
            return bytes(out)
        if isinstance(exc, Signal):
            declared = self.handler_type.signals.get(exc.condition)
            if declared is None:
                raise EncodeError(
                    "handler raised undeclared exception %r" % (exc.condition,)
                )
            out.append(_TAG_SIGNAL)
            encode_value(STRING, exc.condition, out)
            out += encode_values(declared, exc.exception_args())
            return bytes(out)
        raise EncodeError("cannot encode outcome exception %r" % (exc,))

    def decode(self, data: bytes) -> Outcome:
        """Decode an outcome; undeclared signals raise DecodeError."""
        if not data:
            raise DecodeError("empty outcome payload")
        tag = data[0]
        if tag == _TAG_NORMAL:
            results = decode_values(self.handler_type.returns, data[1:])
            return Outcome.normal(*results)
        if tag == _TAG_UNAVAILABLE:
            reason, offset = decode_value(STRING, data, 1)
            _expect_consumed(data, offset)
            return Outcome.exceptional(Unavailable(reason))
        if tag == _TAG_FAILURE:
            reason, offset = decode_value(STRING, data, 1)
            _expect_consumed(data, offset)
            return Outcome.exceptional(Failure(reason))
        if tag == _TAG_SIGNAL:
            name, offset = decode_value(STRING, data, 1)
            declared = self.handler_type.signals.get(name)
            if declared is None:
                raise DecodeError("undeclared exception %r in reply" % (name,))
            values = []
            for tp in declared:
                value, offset = decode_value(tp, data, offset)
                values.append(value)
            _expect_consumed(data, offset)
            return Outcome.exceptional(Signal(name, *values))
        raise DecodeError("unknown outcome tag %d" % (tag,))


def _expect_consumed(data: bytes, offset: int) -> None:
    if offset != len(data):
        raise DecodeError("%d trailing bytes in outcome" % (len(data) - offset))


def failing_user_type(
    type_name: str = "fragile",
    fail_encode: bool = False,
    fail_decode: bool = False,
) -> UserType:
    """A string-backed abstract type whose codec fails on demand.

    Used by tests and the E9 benchmark to inject the paper's "encoding or
    decoding may fail" events at will: values equal to ``"poison"`` trip the
    selected stage.
    """

    def to_external(value: Any) -> str:
        if fail_encode and value == "poison":
            raise ValueError("injected encode failure")
        return str(value)

    def from_external(text: str) -> str:
        if fail_decode and text == "poison":
            raise ValueError("injected decode failure")
        return text

    return UserType(type_name, STRING, to_external, from_external)
