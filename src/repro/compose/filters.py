"""Filters: the local computations between streams of a cascade.

"This program form allows arbitrary *filter* computations to be done to
'match' the two streams" (§4).  A filter maps the claimed result of a call
on stream *i* (plus the original work item) to the argument tuple of the
call on stream *i+1*; it may also skip the item or stop the whole
composition — "if a call on the first stream raises an exception, the
filter could cope with the problem either by manufacturing arguments for
the call on the next stream or by omitting the call or by terminating the
computation."
"""

from __future__ import annotations

from typing import Any, Callable

__all__ = ["SKIP", "Filter", "identity_filter", "make_filter"]


class _Skip:
    """Sentinel returned by a filter to omit the call for this item."""

    def __repr__(self) -> str:
        return "<SKIP>"


#: Return this from a filter to omit the next-stage call for the item.
SKIP = _Skip()


class Filter:
    """A filter function plus its modelled execution cost.

    ``fn(previous_value, item) -> args tuple | SKIP``; raising an exception
    from *fn* terminates the composition (the coenter propagates it).
    ``cost`` simulated time units are charged per application — the knob
    benchmark E6 sweeps ("this is of interest only if the filters are
    lengthy").
    """

    def __init__(
        self,
        fn: Callable[[Any, Any], Any],
        cost: float = 0.0,
        name: str = "",
    ) -> None:
        if cost < 0:
            raise ValueError("filter cost must be >= 0")
        self.fn = fn
        self.cost = cost
        self.name = name or getattr(fn, "__name__", "filter")

    def __call__(self, previous_value: Any, item: Any) -> Any:
        return self.fn(previous_value, item)

    def __repr__(self) -> str:
        return "<Filter %s cost=%g>" % (self.name, self.cost)


def identity_filter() -> Filter:
    """Pass the previous stage's value through as the single argument."""
    return Filter(lambda value, _item: (value,), name="identity")


def make_filter(
    fn: Callable[[Any, Any], Any], cost: float = 0.0, name: str = ""
) -> Filter:
    """Wrap *fn* (or return it unchanged if already a :class:`Filter`)."""
    if isinstance(fn, Filter):
        return fn
    return Filter(fn, cost=cost, name=name)
