"""Stream composition: cascades of calls across several streams (§4).

Three program structures from the paper, all runnable over the same
declarative :class:`Pipeline` description:

* :func:`run_phased` — the Figure 3-1 shape: finish all calls on stream
  *i* before starting stream *i+1* (minimal overlap; the baseline);
* :func:`run_per_stream` — the Figure 4-2 shape: one coenter arm per
  stream, connected by shared promise queues ("organized around the
  streams ... each process was in charge of making calls on a single
  stream");
* :func:`run_per_item` — one (dynamically created) arm per data item,
  each walking the whole cascade ("there would be a process per item").

All three return the list of final-stage results in item order, so tests
can assert they agree while benchmarks compare their costs.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

from repro.compose.filters import SKIP, Filter, make_filter
from repro.concurrency.promise_queue import PromiseQueue
from repro.core.promise import Promise

__all__ = ["Stage", "Pipeline", "run_phased", "run_per_stream", "run_per_item"]


class Stage:
    """One stream of the cascade: a remote handler plus the filter that
    adapts the previous stage's results into its arguments.

    ``guardian``/``handler`` name the remote port (looked up per arm so
    each process gets its own stream).  The first stage's filter receives
    ``None`` as the previous value.
    """

    def __init__(
        self,
        guardian: str,
        handler: str,
        filter: Any = None,
        name: str = "",
    ) -> None:
        self.guardian = guardian
        self.handler = handler
        self.filter = make_filter(filter) if filter is not None else Filter(
            lambda value, item: (item,) if value is None else (value,),
            name="default",
        )
        self.name = name or "%s.%s" % (guardian, handler)

    def __repr__(self) -> str:
        return "<Stage %s>" % (self.name,)


class Pipeline:
    """An ordered list of stages applied to a list of work items."""

    def __init__(self, stages: Sequence[Stage]) -> None:
        if not stages:
            raise ValueError("a pipeline needs at least one stage")
        self.stages = list(stages)

    def __len__(self) -> int:
        return len(self.stages)


class _End:
    """Queue sentinel marking the end of the item sequence."""


_END = _End()


def _apply_filter(ctx, stage: Stage, value: Any, item: Any):
    """Charge the filter's cost, then apply it (``yield from``-able)."""
    if stage.filter.cost > 0:
        yield ctx.sleep(stage.filter.cost)
    return stage.filter(value, item)


def run_phased(ctx, pipeline: Pipeline, items: Sequence[Any]):
    """Figure 3-1 structure: one stream at a time (``yield from``-able).

    All calls of stage *i* are made (and their promises stored) before any
    call of stage *i+1* — "We cannot begin printing results until all
    calls to the grades database have been initiated."
    """
    values: List[Any] = [None] * len(items)
    live = list(range(len(items)))
    for stage in pipeline.stages:
        ref = ctx.lookup(stage.guardian, stage.handler)
        promises: List[Optional[Promise]] = []
        kept: List[int] = []
        for index in live:
            args = yield from _apply_filter(ctx, stage, values[index], items[index])
            if args is SKIP:
                promises.append(None)
            else:
                promises.append(ref.stream(*args))
            kept.append(index)
        ref.flush()
        next_live: List[int] = []
        for index, promise in zip(kept, promises):
            if promise is None:
                continue
            values[index] = yield promise.claim()
            next_live.append(index)
        live = next_live
    return [values[index] for index in live]


def run_per_stream(ctx, pipeline: Pipeline, items: Sequence[Any]):
    """Figure 4-2 structure: a coenter arm per stage (``yield from``-able).

    Arms are chained by promise queues; stage *i+1* starts claiming while
    stage *i* is still issuing calls, giving the §4 overlap.
    """
    co = ctx.coenter()
    queues = [
        co.guard_queue(PromiseQueue(ctx.env).raw)
        for _ in range(len(pipeline.stages) + 1)
    ]

    def stage_arm(actx, stage: Stage, inbound, outbound):
        ref = actx.lookup(stage.guardian, stage.handler)
        while True:
            token = yield inbound.get()
            if isinstance(token, _End):
                break
            index, item, promise = token
            value = None if promise is None else (yield promise.claim())
            args = yield from _apply_filter(actx, stage, value, item)
            if args is SKIP:
                continue
            yield outbound.put((index, item, ref.stream(*args)))
        ref.flush()
        yield ref.synch()
        yield outbound.put(_END)

    def feed_arm(actx):
        for index, item in enumerate(items):
            yield queues[0].put((index, item, None))
        yield queues[0].put(_END)

    collected: List[Any] = []

    def collect_arm(actx):
        inbound = queues[-1]
        while True:
            token = yield inbound.get()
            if isinstance(token, _End):
                break
            index, _item, promise = token
            value = yield promise.claim()
            collected.append((index, value))

    co.arm(feed_arm, label="feed")
    for position, stage in enumerate(pipeline.stages):
        co.arm(stage_arm, stage, queues[position], queues[position + 1], label=stage.name)
    co.arm(collect_arm, label="collect")
    yield co.run()
    collected.sort(key=lambda pair: pair[0])
    return [value for _index, value in collected]


def run_per_item(ctx, pipeline: Pipeline, items: Sequence[Any]):
    """§4.3's alternative: one arm per data item (``yield from``-able).

    "Each process would move its item from one stream to another."  Every
    arm has its own agent (hence its own streams), so cross-item batching
    is lost and per-process overhead is paid per item — the trade-off
    benchmark E6 measures.
    """
    co = ctx.coenter()
    results: List[Any] = [None] * len(items)
    dropped: set = set()

    def item_arm(actx, work):
        index, item = work
        value = None
        for stage in pipeline.stages:
            ref = actx.lookup(stage.guardian, stage.handler)
            args = yield from _apply_filter(actx, stage, value, item)
            if args is SKIP:
                dropped.add(index)
                return
            value = yield ref.stream(*args).claim()
        results[index] = value

    co.arm_each(item_arm, list(enumerate(items)), label="item")
    yield co.run()
    return [value for index, value in enumerate(results) if index not in dropped]
