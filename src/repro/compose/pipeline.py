"""Stream composition: cascades of calls across several streams (§4).

Three program structures from the paper, all runnable over the same
declarative :class:`Pipeline` description:

* :func:`run_phased` — the Figure 3-1 shape: finish all calls on stream
  *i* before starting stream *i+1* (minimal overlap; the baseline);
* :func:`run_per_stream` — the Figure 4-2 shape: one coenter arm per
  stream, connected by shared promise queues ("organized around the
  streams ... each process was in charge of making calls on a single
  stream");
* :func:`run_per_item` — one (dynamically created) arm per data item,
  each walking the whole cascade ("there would be a process per item").

All three return the list of final-stage results in item order, so tests
can assert they agree while benchmarks compare their costs.

Two further runners are built on the promise *continuation* layer
(:meth:`~repro.core.promise.Promise.when_resolved` and friends, PR 6)
instead of blocking claims: :func:`run_vat_phased` mirrors the Figure 3-1
phase structure and :func:`run_vat_per_item` the per-item cascade, but
neither consumes a waiting process per outstanding promise — each returns
a promise for the result list, driven entirely by vat callbacks.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

from repro.compose.filters import SKIP, Filter, make_filter
from repro.concurrency.promise_queue import PromiseQueue
from repro.core.exceptions import ArgusError
from repro.core.outcome import Outcome
from repro.core.promise import Promise

__all__ = [
    "Stage",
    "Pipeline",
    "run_phased",
    "run_per_stream",
    "run_per_item",
    "run_vat_phased",
    "run_vat_per_item",
]


class Stage:
    """One stream of the cascade: a remote handler plus the filter that
    adapts the previous stage's results into its arguments.

    ``guardian``/``handler`` name the remote port (looked up per arm so
    each process gets its own stream).  The first stage's filter receives
    ``None`` as the previous value.
    """

    def __init__(
        self,
        guardian: str,
        handler: str,
        filter: Any = None,
        name: str = "",
    ) -> None:
        self.guardian = guardian
        self.handler = handler
        self.filter = make_filter(filter) if filter is not None else Filter(
            lambda value, item: (item,) if value is None else (value,),
            name="default",
        )
        self.name = name or "%s.%s" % (guardian, handler)

    def __repr__(self) -> str:
        return "<Stage %s>" % (self.name,)


class Pipeline:
    """An ordered list of stages applied to a list of work items."""

    def __init__(self, stages: Sequence[Stage]) -> None:
        if not stages:
            raise ValueError("a pipeline needs at least one stage")
        self.stages = list(stages)

    def __len__(self) -> int:
        return len(self.stages)


class _End:
    """Queue sentinel marking the end of the item sequence."""


_END = _End()


def _apply_filter(ctx, stage: Stage, value: Any, item: Any):
    """Charge the filter's cost, then apply it (``yield from``-able)."""
    if stage.filter.cost > 0:
        yield ctx.sleep(stage.filter.cost)
    return stage.filter(value, item)


def run_phased(ctx, pipeline: Pipeline, items: Sequence[Any]):
    """Figure 3-1 structure: one stream at a time (``yield from``-able).

    All calls of stage *i* are made (and their promises stored) before any
    call of stage *i+1* — "We cannot begin printing results until all
    calls to the grades database have been initiated."
    """
    values: List[Any] = [None] * len(items)
    live = list(range(len(items)))
    for stage in pipeline.stages:
        ref = ctx.lookup(stage.guardian, stage.handler)
        promises: List[Optional[Promise]] = []
        kept: List[int] = []
        for index in live:
            args = yield from _apply_filter(ctx, stage, values[index], items[index])
            if args is SKIP:
                promises.append(None)
            else:
                promises.append(ref.stream(*args))
            kept.append(index)
        ref.flush()
        next_live: List[int] = []
        for index, promise in zip(kept, promises):
            if promise is None:
                continue
            values[index] = yield promise.claim()
            next_live.append(index)
        live = next_live
    return [values[index] for index in live]


def run_per_stream(ctx, pipeline: Pipeline, items: Sequence[Any]):
    """Figure 4-2 structure: a coenter arm per stage (``yield from``-able).

    Arms are chained by promise queues; stage *i+1* starts claiming while
    stage *i* is still issuing calls, giving the §4 overlap.
    """
    co = ctx.coenter()
    queues = [
        co.guard_queue(PromiseQueue(ctx.env).raw)
        for _ in range(len(pipeline.stages) + 1)
    ]

    def stage_arm(actx, stage: Stage, inbound, outbound):
        ref = actx.lookup(stage.guardian, stage.handler)
        while True:
            token = yield inbound.get()
            if isinstance(token, _End):
                break
            index, item, promise = token
            value = None if promise is None else (yield promise.claim())
            args = yield from _apply_filter(actx, stage, value, item)
            if args is SKIP:
                continue
            yield outbound.put((index, item, ref.stream(*args)))
        ref.flush()
        yield ref.synch()
        yield outbound.put(_END)

    def feed_arm(actx):
        for index, item in enumerate(items):
            yield queues[0].put((index, item, None))
        yield queues[0].put(_END)

    collected: List[Any] = []

    def collect_arm(actx):
        inbound = queues[-1]
        while True:
            token = yield inbound.get()
            if isinstance(token, _End):
                break
            index, _item, promise = token
            value = yield promise.claim()
            collected.append((index, value))

    co.arm(feed_arm, label="feed")
    for position, stage in enumerate(pipeline.stages):
        co.arm(stage_arm, stage, queues[position], queues[position + 1], label=stage.name)
    co.arm(collect_arm, label="collect")
    yield co.run()
    collected.sort(key=lambda pair: pair[0])
    return [value for _index, value in collected]


def run_per_item(ctx, pipeline: Pipeline, items: Sequence[Any]):
    """§4.3's alternative: one arm per data item (``yield from``-able).

    "Each process would move its item from one stream to another."  Every
    arm has its own agent (hence its own streams), so cross-item batching
    is lost and per-process overhead is paid per item — the trade-off
    benchmark E6 measures.
    """
    co = ctx.coenter()
    results: List[Any] = [None] * len(items)
    dropped: set = set()

    def item_arm(actx, work):
        index, item = work
        value = None
        for stage in pipeline.stages:
            ref = actx.lookup(stage.guardian, stage.handler)
            args = yield from _apply_filter(actx, stage, value, item)
            if args is SKIP:
                dropped.add(index)
                return
            value = yield ref.stream(*args).claim()
        results[index] = value

    co.arm_each(item_arm, list(enumerate(items)), label="item")
    yield co.run()
    return [value for index, value in enumerate(results) if index not in dropped]


def _break_run(run: Promise, exc: Exception, where: str) -> None:
    """Resolve *run* from an exception a pipeline callback raised."""
    if run.ready():
        return
    if isinstance(exc, ArgusError):
        run.resolve(Outcome.exceptional(exc))
    else:
        run.resolve(Outcome.failure("%s raised %r" % (where, exc)))


def run_vat_phased(ctx, pipeline: Pipeline, items: Sequence[Any]) -> Promise:
    """Figure 3-1 structure on the continuation layer (non-blocking).

    Same phase discipline as :func:`run_phased` — every call of stage *i*
    is issued (and the stream flushed) before any call of stage *i+1*, and
    stage *i+1* starts only once all stage-*i* promises have resolved —
    but the synchronization is a :meth:`Promise.all` continuation instead
    of a process blocked in sequential claims.  Issues the same calls at
    the same simulated times, so the wire trace matches ``run_phased``
    (the golden-equivalence test pins this).

    Returns a :class:`Promise` for the final-stage result list; a broken
    stage call or a raising filter breaks it.
    """
    env = ctx.env
    run = Promise(env, label="vat_phased")

    def start_stage(position: int, values: List[Any], live: List[int]) -> None:
        if run.ready():
            return
        if position == len(pipeline.stages):
            run.resolve(Outcome.normal([values[index] for index in live]))
            return
        stage = pipeline.stages[position]
        ref = ctx.lookup(stage.guardian, stage.handler)
        calls: List = []  # (item index, promise) in issue order

        def step(cursor: int) -> None:
            # Apply the filter for live[cursor] and issue its call, then
            # continue — looping inline while the filter is free, bouncing
            # off the calendar (call_in) to charge non-zero filter cost
            # exactly where run_phased's ctx.sleep would.
            while True:
                index = live[cursor]
                try:
                    args = stage.filter(values[index], items[index])
                except Exception as exc:
                    _break_run(run, exc, "filter %r" % stage.filter.name)
                    return
                if args is not SKIP:
                    calls.append((index, ref.stream(*args)))
                cursor += 1
                if cursor == len(live):
                    ref.flush()
                    gather()
                    return
                if stage.filter.cost > 0:
                    env.call_in(stage.filter.cost, step, cursor)
                    return

        def gather() -> None:
            if not calls:
                start_stage(position + 1, values, [])
                return
            gathered = Promise.all(env, [promise for _index, promise in calls])

            def settle(outcome: Outcome) -> None:
                if run.ready():
                    return
                if not outcome.is_normal:
                    run.resolve(outcome)
                    return
                for (index, _promise), value in zip(calls, outcome.results[0]):
                    values[index] = value
                start_stage(
                    position + 1, values, [index for index, _promise in calls]
                )

            gathered._subscribe(settle)

        if not live:
            ref.flush()
            start_stage(position + 1, values, live)
        elif stage.filter.cost > 0:
            env.call_in(stage.filter.cost, step, 0)
        else:
            step(0)

    start_stage(0, [None] * len(items), list(range(len(items))))
    return run


def run_vat_per_item(ctx, pipeline: Pipeline, items: Sequence[Any]) -> Promise:
    """§4.3's per-item cascade as one continuation chain per item.

    Where :func:`run_per_item` spawns a coenter arm (a full simulated
    process, with its own agent and streams) per data item, this walks
    every item down the cascade with ``when_resolved`` hops on the shared
    context's streams — per-item overhead is one vat callback per stage
    hop.  Items progress independently: item 0 may be claiming stage 2
    while item 1 still waits on stage 0.

    Returns a :class:`Promise` for the result list (skipped items
    omitted, item order preserved); the first broken call or raising
    filter breaks it.
    """
    env = ctx.env
    run = Promise(env, label="vat_per_item")
    count = len(items)
    if count == 0:
        run.resolve(Outcome.normal([]))
        return run
    results: List[Any] = [None] * count
    dropped: set = set()
    state = {"remaining": count}

    def finish_one() -> None:
        state["remaining"] -= 1
        if state["remaining"] == 0 and not run.ready():
            run.resolve(
                Outcome.normal(
                    [
                        value
                        for index, value in enumerate(results)
                        if index not in dropped
                    ]
                )
            )

    def do_stage(index: int, item: Any, position: int, value: Any) -> None:
        if run.ready():
            return
        if position == len(pipeline.stages):
            results[index] = value
            finish_one()
            return
        stage = pipeline.stages[position]
        ref = ctx.lookup(stage.guardian, stage.handler)

        def apply_and_call() -> None:
            if run.ready():
                return
            try:
                args = stage.filter(value, item)
            except Exception as exc:
                _break_run(run, exc, "filter %r" % stage.filter.name)
                return
            if args is SKIP:
                dropped.add(index)
                finish_one()
                return
            promise = ref.stream(*args)
            ref.flush()

            def on_outcome(outcome: Outcome) -> None:
                if run.ready():
                    return
                if not outcome.is_normal:
                    run.resolve(outcome)
                    return
                do_stage(index, item, position + 1, Promise._unwrap(outcome))

            promise._subscribe(on_outcome)

        if stage.filter.cost > 0:
            env.call_in(stage.filter.cost, apply_and_call)
        else:
            apply_and_call()

    for index, item in enumerate(items):
        do_stage(index, item, 0, None)
    return run
