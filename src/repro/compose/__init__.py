"""Stream composition: pipelines and filters (paper §4)."""

from repro.compose.filters import SKIP, Filter, identity_filter, make_filter
from repro.compose.pipeline import (
    Pipeline,
    Stage,
    run_per_item,
    run_per_stream,
    run_phased,
    run_vat_per_item,
    run_vat_phased,
)

__all__ = [
    "Filter",
    "Pipeline",
    "SKIP",
    "Stage",
    "identity_filter",
    "make_filter",
    "run_per_item",
    "run_per_stream",
    "run_phased",
    "run_vat_per_item",
    "run_vat_phased",
]
