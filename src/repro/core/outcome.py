"""Call outcomes under the termination model.

An :class:`Outcome` captures how a call terminated — normally with a tuple
of results, or exceptionally with an :class:`~repro.core.exceptions.ArgusError`
— as a first-class immutable value.  Outcomes are what travel in reply
messages and what a ready promise stores; ``claim`` simply applies the
outcome (return or raise).
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

from repro.core.exceptions import ArgusError, Failure, Signal, Unavailable

__all__ = ["Outcome"]


class Outcome:
    """Immutable result of a terminated call."""

    __slots__ = ("_results", "_exception")

    def __init__(
        self,
        results: Optional[Tuple[Any, ...]] = None,
        exception: Optional[ArgusError] = None,
    ) -> None:
        if (results is None) == (exception is None):
            raise ValueError("an outcome is either results or an exception")
        if exception is not None and not isinstance(exception, ArgusError):
            raise TypeError(
                "outcome exception must be an ArgusError, got %r" % (exception,)
            )
        self._results = tuple(results) if results is not None else None
        self._exception = exception

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def normal(cls, *results: Any) -> "Outcome":
        """A normal termination carrying zero or more results."""
        return cls(results=tuple(results))

    @classmethod
    def exceptional(cls, exception: ArgusError) -> "Outcome":
        """An exceptional termination."""
        return cls(exception=exception)

    @classmethod
    def unavailable(cls, reason: str = "cannot communicate") -> "Outcome":
        return cls(exception=Unavailable(reason))

    @classmethod
    def failure(cls, reason: str = "call failed") -> "Outcome":
        return cls(exception=Failure(reason))

    @classmethod
    def signal(cls, name: str, *sig_args: Any) -> "Outcome":
        return cls(exception=Signal(name, *sig_args))

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def is_normal(self) -> bool:
        return self._exception is None

    @property
    def is_exceptional(self) -> bool:
        return self._exception is not None

    @property
    def results(self) -> Tuple[Any, ...]:
        if self._results is None:
            raise ValueError("exceptional outcome has no results: %r" % (self,))
        return self._results

    @property
    def exception(self) -> ArgusError:
        if self._exception is None:
            raise ValueError("normal outcome has no exception: %r" % (self,))
        return self._exception

    @property
    def condition(self) -> str:
        """The termination condition name ('normal' or the exception name)."""
        if self._exception is None:
            return "normal"
        return self._exception.condition

    # ------------------------------------------------------------------
    # Application
    # ------------------------------------------------------------------
    def apply(self) -> Any:
        """Return the results (unwrapped if single) or raise the exception.

        This is the semantics of ``claim``: "it returns normally if the call
        terminated normally, and otherwise it signals the appropriate
        exception."
        """
        if self._exception is not None:
            raise self._exception
        if len(self._results) == 0:
            return None
        if len(self._results) == 1:
            return self._results[0]
        return self._results

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Outcome):
            return NotImplemented
        if self.is_normal != other.is_normal:
            return False
        if self.is_normal:
            return self._results == other._results
        return (
            type(self._exception) is type(other._exception)
            and self._exception.condition == other._exception.condition
            and self._exception.args == other._exception.args
        )

    def __hash__(self) -> int:
        if self.is_normal:
            return hash(("normal", self._results))
        return hash((self._exception.condition, self._exception.args))

    def __repr__(self) -> str:
        if self.is_normal:
            return "Outcome.normal%r" % (self._results,)
        return "Outcome.exceptional(%s)" % (self._exception,)
