"""Core promise abstraction and the Argus exception model (paper §3)."""

from repro.core.exceptions import (
    FAILURE,
    UNAVAILABLE,
    ArgusError,
    ExceptionReply,
    Failure,
    PromiseError,
    PromiseNotReady,
    Signal,
    Unavailable,
)
from repro.core.outcome import Outcome
from repro.core.promise import BLOCKED, READY, Promise

__all__ = [
    "ArgusError",
    "BLOCKED",
    "ExceptionReply",
    "FAILURE",
    "Failure",
    "Outcome",
    "Promise",
    "PromiseError",
    "PromiseNotReady",
    "READY",
    "Signal",
    "UNAVAILABLE",
    "Unavailable",
]
