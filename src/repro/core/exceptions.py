"""The Argus exception model (termination model, Liskov & Snyder [11]).

A call terminates in exactly one of several *conditions*: normally, with a
user-declared exception, or with one of the two system exceptions that every
handler implicitly carries:

* ``unavailable`` — a *temporary* problem ("communication is impossible
  right now"); the system has already tried hard, so immediate retry is
  pointless;
* ``failure`` — a *permanent* problem ("handler's guardian does not
  exist", "could not decode").

Both carry a string explaining the reason.  User exceptions are declared in
handler signatures with typed arguments and are raised here as
:class:`Signal` instances; ``claim`` re-raises whatever the call terminated
with, which is the paper's type-safe exception propagation.
"""

from __future__ import annotations

from typing import Any, Tuple

__all__ = [
    "ArgusError",
    "Signal",
    "Unavailable",
    "Failure",
    "ExceptionReply",
    "PromiseError",
    "PromiseNotReady",
    "UNAVAILABLE",
    "FAILURE",
]

#: Canonical names of the two implicit system exceptions.
UNAVAILABLE = "unavailable"
FAILURE = "failure"


class ArgusError(Exception):
    """Base class for all exceptions in the Argus model.

    Every Argus exception has a *condition name* (used to match ``except
    when`` arms and to check against declared signal lists) and a tuple of
    exception results.
    """

    condition: str = "error"

    def exception_args(self) -> Tuple[Any, ...]:
        """The exception's results, as passed back to the caller."""
        return tuple(self.args)


class Signal(ArgusError):
    """A user-declared exception: ``signal name(args...)``.

    ``Signal("no_such_user")`` or ``Signal("e1", "x")`` — the name must be
    declared in the handler's signature with matching argument types, which
    the runtime verifies before the exception crosses the wire.
    """

    def __init__(self, name: str, *sig_args: Any) -> None:
        if not isinstance(name, str) or not name:
            raise TypeError("signal name must be a non-empty string")
        if name in (UNAVAILABLE, FAILURE):
            raise ValueError(
                "signal %r is reserved for the system; raise Unavailable/"
                "Failure instead" % name
            )
        super().__init__(*sig_args)
        self.condition = name

    def exception_args(self) -> Tuple[Any, ...]:
        return tuple(self.args)

    def __str__(self) -> str:
        if self.args:
            return "%s(%s)" % (self.condition, ", ".join(repr(a) for a in self.args))
        return self.condition


class Unavailable(ArgusError):
    """Temporary inability to complete a call (node/network trouble)."""

    condition = UNAVAILABLE

    def __init__(self, reason: str = "cannot communicate") -> None:
        super().__init__(reason)

    @property
    def reason(self) -> str:
        return self.args[0]

    def __str__(self) -> str:
        return "unavailable(%r)" % (self.reason,)


class Failure(ArgusError):
    """Permanent inability to complete a call (the call is an error)."""

    condition = FAILURE

    def __init__(self, reason: str = "call failed") -> None:
        super().__init__(reason)

    @property
    def reason(self) -> str:
        return self.args[0]

    def __str__(self) -> str:
        return "failure(%r)" % (self.reason,)


class ExceptionReply(ArgusError):
    """Signalled by ``synch`` when some earlier stream call did not return
    normally (paper §3: "otherwise, it signals exception_reply").

    Deliberately carries no detail: "It does not return information about
    which calls raised exceptions; to discover this, the program must use
    promises."
    """

    condition = "exception_reply"

    def __init__(self) -> None:
        super().__init__()


class PromiseError(ArgusError):
    """Misuse of a promise object (a local programming error)."""

    condition = "promise_error"


class PromiseNotReady(PromiseError):
    """Non-blocking access to the value of a still-blocked promise."""

    condition = "promise_not_ready"
