"""The promise data type (the paper's primary contribution).

    "A promise is a place holder for a value that will exist in the future.
     It is created at the time a call is made.  The call computes the value
     of the promise, running in parallel with the program that made the
     call.  When it completes, its results are stored in the promise and
     can then be 'claimed' by the caller."

A promise is in one of two states, *blocked* or *ready*.  Once ready it
stays ready and its value never changes.  ``claim`` waits for readiness and
then returns the normal result or raises the call's exception; ``ready`` is
the non-blocking probe.  Promises are strongly typed: a
:class:`~repro.types.signatures.PromiseType` says what the normal results
and declared exceptions may be, and the runtime enforces it when the promise
resolves — so, unlike MultiLisp futures, no per-access runtime check is ever
needed (benchmark E7 measures exactly this difference).

Beyond the paper's blocking ``claim``, this module provides a
*continuation* layer modelled on the E-rights vat scheme (0install's
``async.mli``; see SNIPPETS.md Snippet 3): :meth:`Promise.when_resolved`,
:meth:`Promise.when_fulfilled` and :meth:`Promise.when_broken` register
callbacks dispatched through the environment's
:class:`~repro.concurrency.vat.Vat`, returning *derived* promises for the
callback results so chains compose; :meth:`Promise.all`,
:meth:`Promise.any` and :meth:`Promise.race` gather many promises into
one.  Continuations cost one vat-queue entry per registration instead of
one simulated process per outstanding promise, which is what lets a
single process hold 10^5+ pending promises (``benchmarks/perf/vat_bench.py``
measures exactly this difference).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Optional

from repro.core.exceptions import (
    ArgusError,
    PromiseError,
    PromiseNotReady,
    Signal,
)
from repro.core.outcome import Outcome
from repro.sim.events import Event
from repro.sim.kernel import Environment
from repro.types.checking import TypeViolation, check_results, check_value
from repro.types.signatures import PromiseType

__all__ = ["Promise", "BLOCKED", "READY"]

#: Lazily bound :func:`repro.concurrency.vat.vat_of` (broken import cycle:
#: the concurrency package imports this module at load time).
_vat_of = None


def _get_vat(env: Environment):
    global _vat_of
    if _vat_of is None:
        from repro.concurrency.vat import vat_of

        _vat_of = vat_of
    return _vat_of(env)


def _ambient_span(env: Environment):
    """The causal span of the currently running activity, if any.

    Inside a simulated process this is the process's span; inside a vat
    callback it is the span the continuation was registered under — so
    continuation chains keep threading the original caller's trace.
    """
    active = env.active_process
    if active is not None:
        return active.span
    vat = env.vat
    if vat is not None:
        return vat.current_span
    return None

#: State constants (the paper's two promise states).
BLOCKED = "blocked"
READY = "ready"


class Promise:
    """A typed placeholder for the outcome of an asynchronous call.

    Instances are created by the runtime — by a stream call
    (:mod:`repro.streams`), by ``fork`` (:mod:`repro.concurrency.fork`) — or
    directly by tests.  The *resolver* side calls :meth:`resolve` exactly
    once; the *claimer* side calls :meth:`claim` any number of times.
    """

    def __init__(
        self,
        env: Environment,
        ptype: Optional[PromiseType] = None,
        label: str = "",
        outcome: Optional[Outcome] = None,
    ) -> None:
        if ptype is not None and not isinstance(ptype, PromiseType):
            raise TypeError("ptype must be a PromiseType, got %r" % (ptype,))
        self.env = env
        self.ptype = ptype
        self.label = label
        self.promise_id = env.new_serial("promise")
        #: Simulated time the promise came into existence (call time).
        self.created_at = env.now
        self._outcome: Optional[Outcome] = None
        self._waiters: List[Event] = []
        #: Registered continuations: None while none exist, a single
        #: ``(fn, span)`` tuple for one (the overwhelmingly common case —
        #: at 10^5 pending promises the saved list is megabytes), a list
        #: of such tuples beyond that.
        self._continuations: Any = None
        #: Number of claim operations performed (used by benchmarks).
        self.claim_count = 0
        if outcome is not None:
            # Born ready (make_fulfilled / make_broken): the outcome is
            # stored at construction and no resolve() transition ever
            # happens, so the created event carries resolved=True for the
            # lifecycle monitor's benefit.
            if not isinstance(outcome, Outcome):
                raise TypeError(
                    "outcome must be an Outcome, got %r" % (outcome,)
                )
            self._outcome = self._coerce(outcome)
        tracer = env.tracer
        if tracer is not None:
            if self._outcome is not None:
                tracer.emit(
                    "promise.created",
                    promise_id=self.promise_id,
                    label=label,
                    resolved=True,
                )
            else:
                tracer.emit(
                    "promise.created", promise_id=self.promise_id, label=label
                )

    @classmethod
    def make_fulfilled(
        cls,
        env: Environment,
        *results: Any,
        ptype: Optional[PromiseType] = None,
        label: str = "",
    ) -> "Promise":
        """A promise born ready with a normal outcome (0install's ``return``)."""
        return cls(env, ptype, label, outcome=Outcome.normal(*results))

    @classmethod
    def make_broken(
        cls,
        env: Environment,
        exception: ArgusError,
        ptype: Optional[PromiseType] = None,
        label: str = "",
    ) -> "Promise":
        """A promise born ready with an exceptional outcome."""
        return cls(env, ptype, label, outcome=Outcome.exceptional(exception))

    def __repr__(self) -> str:
        tag = " %r" % self.label if self.label else ""
        return "<Promise #%d%s %s>" % (self.promise_id, tag, self.state)

    # ------------------------------------------------------------------
    # Claimer-side interface
    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        """``'blocked'`` or ``'ready'``."""
        return READY if self._outcome is not None else BLOCKED

    def ready(self) -> bool:
        """The paper's ``ready`` operation: non-blocking readiness probe."""
        return self._outcome is not None

    def outcome(self) -> Outcome:
        """The stored outcome; raises :class:`PromiseNotReady` if blocked."""
        if self._outcome is None:
            raise PromiseNotReady("promise %r is not ready" % self)
        return self._outcome

    def claim(self) -> Event:
        """The paper's ``claim`` operation, as a yieldable event.

        From a simulated process::

            value = yield promise.claim()

        The yield blocks until the promise is ready, then delivers the
        normal result — or raises the call's exception (a user
        :class:`~repro.core.exceptions.Signal`, ``unavailable`` or
        ``failure``) into the claiming process.  A promise may be claimed
        multiple times; the same outcome occurs each time.
        """
        self.claim_count += 1
        event = Event(self.env)
        tracer = self.env.tracer
        if tracer is not None:
            ready = self._outcome is not None
            tracer.emit(
                "promise.claimed", promise_id=self.promise_id, ready=ready
            )
            if ready:
                tracer.emit(
                    "promise.claim_latency", promise_id=self.promise_id, wait=0.0
                )
            else:
                # The wait ends when the claim event is delivered, which
                # happens at the promise's resolution time.
                claimed_at = self.env.now

                def _record_wait(_event: Event) -> None:
                    active = self.env.tracer
                    if active is not None:
                        active.emit(
                            "promise.claim_latency",
                            promise_id=self.promise_id,
                            wait=self.env.now - claimed_at,
                        )

                event.callbacks.append(_record_wait)
        if self._outcome is not None:
            self._deliver(event, self._outcome)
        else:
            self._waiters.append(event)
        return event

    def wait(self) -> Event:
        """Block until ready, delivering the :class:`Outcome` (never raises).

        Useful for code that wants to inspect the termination condition
        without exception handling, e.g. the ``synch`` implementation.
        """
        event = Event(self.env)
        if self._outcome is not None:
            event.succeed(self._outcome)
        else:
            self._waiters.append(_OutcomeWaiter(event))  # type: ignore[arg-type]
        return event

    # ------------------------------------------------------------------
    # Resolver-side interface
    # ------------------------------------------------------------------
    def resolve(self, outcome: Outcome) -> None:
        """Move the promise from blocked to ready with *outcome*.

        The transition happens at most once; a second resolution is a
        programming error.  If the promise is typed, the outcome is checked
        against the promise type; a nonconforming outcome is *replaced* by a
        ``failure`` outcome (mirroring the paper's treatment of decode
        errors: bad data arriving for a promise becomes
        ``failure("could not decode")``, never a type hole).
        """
        if not isinstance(outcome, Outcome):
            raise TypeError("resolve requires an Outcome, got %r" % (outcome,))
        if self._outcome is not None:
            raise PromiseError(
                "promise %r is already ready; its value never changes" % self
            )
        self._outcome = self._coerce(outcome)
        tracer = self.env.tracer
        if tracer is not None:
            tracer.emit(
                "promise.resolved",
                promise_id=self.promise_id,
                status=self._outcome.condition,
                age=self.env.now - self.created_at,
                waiters=len(self._waiters),
            )
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            if isinstance(waiter, _OutcomeWaiter):
                if not waiter.event.triggered:
                    waiter.event.succeed(self._outcome)
            elif not waiter.triggered:
                self._deliver(waiter, self._outcome)
        continuations, self._continuations = self._continuations, None
        if continuations is not None:
            vat = _get_vat(self.env)
            outcome = self._outcome
            if type(continuations) is tuple:
                vat.do_soon(continuations[0], outcome, span=continuations[1])
            else:
                for fn, span in continuations:
                    vat.do_soon(fn, outcome, span=span)

    def resolve_normal(self, *results: Any) -> None:
        """Convenience: resolve with a normal outcome."""
        self.resolve(Outcome.normal(*results))

    def resolve_exceptional(self, exception: ArgusError) -> None:
        """Convenience: resolve with an exceptional outcome."""
        self.resolve(Outcome.exceptional(exception))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _coerce(self, outcome: Outcome) -> Outcome:
        if self.ptype is None:
            return outcome
        if outcome.is_normal:
            try:
                check_results(self.ptype.returns, outcome.results)
            except TypeViolation as violation:
                return Outcome.failure(
                    "could not decode: %s" % (violation,)
                )
            return outcome
        exc = outcome.exception
        if isinstance(exc, Signal):
            declared = self.ptype.signals.get(exc.condition)
            if declared is None:
                return Outcome.failure(
                    "undeclared exception %r raised by call" % exc.condition
                )
            sig_args = exc.exception_args()
            if len(sig_args) != len(declared):
                return Outcome.failure(
                    "exception %r has %d results, %d expected"
                    % (exc.condition, len(sig_args), len(declared))
                )
            try:
                for i, (tp, value) in enumerate(zip(declared, sig_args)):
                    check_value(tp, value, "exception result %d" % i)
            except TypeViolation as violation:
                return Outcome.failure("could not decode: %s" % (violation,))
        return outcome

    @staticmethod
    def _deliver(event: Event, outcome: Outcome) -> None:
        if outcome.is_normal:
            results = outcome.results
            if len(results) == 0:
                event.succeed(None)
            elif len(results) == 1:
                event.succeed(results[0])
            else:
                event.succeed(results)
        else:
            event.defused = True
            event.fail(outcome.exception)

    # ------------------------------------------------------------------
    # Combinators (widely useful in examples and composition code)
    # ------------------------------------------------------------------
    @staticmethod
    def all_ready(env: Environment, promises: List["Promise"]) -> Event:
        """Event firing when every promise in *promises* is ready."""
        return env.all_of([p.wait() for p in promises])

    @staticmethod
    def any_ready(env: Environment, promises: List["Promise"]) -> Event:
        """Event firing when at least one promise is ready."""
        return env.any_of([p.wait() for p in promises])

    def on_ready(self, callback: Callable[["Promise"], None]) -> None:
        """Invoke *callback(promise)* once the promise becomes ready.

        This is a runtime-internal hook (the stream receiver uses it to
        release replies in order); application code should prefer
        :meth:`claim`.
        """
        if self._outcome is not None:
            callback(self)
            return
        event = self.wait()

        def run(_event: Event) -> None:
            callback(self)

        event.callbacks.append(run)

    # ------------------------------------------------------------------
    # Continuations (the vat layer; see module docstring)
    # ------------------------------------------------------------------
    def _subscribe(self, fn: Callable[[Outcome], None]) -> None:
        """Schedule ``fn(outcome)`` on the vat once the promise is ready.

        The registering activity's causal span is captured so the callback
        runs under it (continuation hops stay on the caller's trace).  If
        the promise is already ready, the callback is still deferred to the
        vat — continuations *never* run synchronously inside the register
        call, which is what makes registration order the only ordering a
        caller has to reason about.
        """
        span = None
        if self.env.tracer is not None:
            span = _ambient_span(self.env)
        if self._outcome is not None:
            _get_vat(self.env).do_soon(fn, self._outcome, span=span)
        else:
            registered = self._continuations
            if registered is None:
                self._continuations = (fn, span)
            elif type(registered) is tuple:
                self._continuations = [registered, (fn, span)]
            else:
                registered.append((fn, span))

    def _chain(
        self, kind: str, callback: Callable[[Any], Any]
    ) -> "Promise":
        """Register *callback* and return the derived promise for its result."""
        derived = Promise(
            self.env, label="%s(#%d)" % (kind, self.promise_id)
        )
        tracer = self.env.tracer
        if tracer is not None:
            tracer.emit(
                "promise.chained",
                promise_id=self.promise_id,
                derived_id=derived.promise_id,
                kind=kind,
                ready=self._outcome is not None,
            )

        def run(outcome: Outcome) -> None:
            # A continuation observing the value is a claim: count it and
            # trace it, tagged so the lifecycle monitor can tell it apart
            # from a blocking claim (it is always ready=True by nature).
            self.claim_count += 1
            active = self.env.tracer
            if active is not None:
                active.emit(
                    "promise.claimed",
                    promise_id=self.promise_id,
                    ready=True,
                    via="continuation",
                )
            try:
                if kind == "when_fulfilled":
                    if not outcome.is_normal:
                        derived.resolve(outcome)
                        return
                    result = callback(self._unwrap(outcome))
                elif kind == "when_broken":
                    if outcome.is_normal:
                        derived.resolve(outcome)
                        return
                    result = callback(outcome.exception)
                else:
                    result = callback(outcome)
            except ArgusError as exc:
                derived.resolve(Outcome.exceptional(exc))
                return
            except Exception as exc:
                derived.resolve(
                    Outcome.failure(
                        "%s continuation for promise #%d crashed: %r"
                        % (kind, self.promise_id, exc)
                    )
                )
                return
            self._settle(derived, result)

        self._subscribe(run)
        return derived

    def on_resolved(self, fn: Callable[[Outcome], None]) -> None:
        """Fire-and-forget continuation: ``fn(outcome)`` on the vat.

        The consumption primitive under :meth:`when_resolved`, without
        the derived promise — one ``(fn, span)`` queue entry is the
        *entire* per-promise cost, which is what the 10^5-pending-promise
        benchmark measures.  Use this when nothing downstream chains on
        the callback's result; use :meth:`when_resolved` when something
        does.  Fires exactly once, even if already ready (deferred to the
        vat, never synchronous).
        """
        self._subscribe(fn)

    def when_resolved(self, callback: Callable[[Outcome], Any]) -> "Promise":
        """Run ``callback(outcome)`` on the vat once this promise is ready.

        Fires exactly once, whether the promise fulfils or breaks, and
        even if it was already ready at registration time.  Returns a
        derived promise for the callback's result: return a plain value
        (or None) to fulfil it, return a :class:`Promise` to forward that
        promise's eventual outcome (flattening), return an
        :class:`~repro.core.outcome.Outcome` to resolve it verbatim, or
        raise an :class:`~repro.core.exceptions.ArgusError` to break it.
        """
        return self._chain("when_resolved", callback)

    def when_fulfilled(self, callback: Callable[[Any], Any]) -> "Promise":
        """Run ``callback(value)`` once this promise fulfils.

        *value* is the claim value (no results → None, one → the value,
        several → a tuple).  If this promise breaks instead, *callback*
        is skipped and the broken outcome passes through to the derived
        promise — so exceptions propagate down a ``when_fulfilled`` chain
        exactly like values do.
        """
        return self._chain("when_fulfilled", callback)

    def when_broken(self, callback: Callable[[ArgusError], Any]) -> "Promise":
        """Run ``callback(exception)`` once this promise breaks.

        The catch arm: if this promise fulfils, *callback* is skipped and
        the normal outcome passes through to the derived promise.  The
        callback's return value fulfils the derived promise (recovery);
        raising breaks it again.
        """
        return self._chain("when_broken", callback)

    def _settle(self, derived: "Promise", result: Any) -> None:
        """Resolve *derived* from a continuation callback's return value."""
        if isinstance(result, Promise):
            result._subscribe(derived.resolve)
        elif isinstance(result, Outcome):
            derived.resolve(result)
        elif result is None:
            derived.resolve(Outcome.normal())
        else:
            derived.resolve(Outcome.normal(result))

    @staticmethod
    def _unwrap(outcome: Outcome) -> Any:
        """Claim-value view of a normal outcome (0 → None, 1 → value, n → tuple)."""
        results = outcome.results
        if len(results) == 0:
            return None
        if len(results) == 1:
            return results[0]
        return results

    # ------------------------------------------------------------------
    # Gathers (vat-dispatched; contrast all_ready/any_ready below, which
    # are event-layer and need a waiting process)
    # ------------------------------------------------------------------
    @staticmethod
    def all(env: Environment, promises: Iterable["Promise"]) -> "Promise":
        """A promise for the list of all claim values.

        Fulfils with a list (in input order) once every input fulfils;
        breaks with the first broken input's outcome as soon as any input
        breaks (remaining inputs are not waited for).  ``all`` of no
        promises fulfils immediately with ``[]``.  Duplicate inputs each
        contribute their own slot.
        """
        inputs = list(promises)
        gathered = Promise(env, label="all[%d]" % len(inputs))
        count = len(inputs)
        if count == 0:
            gathered.resolve(Outcome.normal([]))
            return gathered
        values: List[Any] = [None] * count
        state = {"remaining": count, "done": False}

        def arm(index: int) -> Callable[[Outcome], None]:
            def on_ready(outcome: Outcome) -> None:
                if state["done"]:
                    return
                if not outcome.is_normal:
                    state["done"] = True
                    gathered.resolve(outcome)
                    return
                values[index] = Promise._unwrap(outcome)
                state["remaining"] -= 1
                if state["remaining"] == 0:
                    state["done"] = True
                    gathered.resolve(Outcome.normal(values))

            return on_ready

        for index, promise in enumerate(inputs):
            promise._subscribe(arm(index))
        return gathered

    @staticmethod
    def any(env: Environment, promises: Iterable["Promise"]) -> "Promise":
        """A promise for the first *fulfilled* input's claim value.

        Breaks only if every input breaks (with the first broken input's
        outcome).  ``any`` of no promises breaks immediately with
        ``failure``.
        """
        inputs = list(promises)
        gathered = Promise(env, label="any[%d]" % len(inputs))
        if not inputs:
            gathered.resolve(Outcome.failure("any() of no promises"))
            return gathered
        state = {"remaining": len(inputs), "done": False, "broken": None}

        def on_ready(outcome: Outcome) -> None:
            if state["done"]:
                return
            if outcome.is_normal:
                state["done"] = True
                gathered.resolve(outcome)
                return
            if state["broken"] is None:
                state["broken"] = outcome
            state["remaining"] -= 1
            if state["remaining"] == 0:
                state["done"] = True
                gathered.resolve(state["broken"])

        for promise in inputs:
            promise._subscribe(on_ready)
        return gathered

    @staticmethod
    def race(env: Environment, promises: Iterable["Promise"]) -> "Promise":
        """A promise settling exactly like the first input to resolve.

        Ties (several inputs already ready, or resolved at the same
        timestamp) go to the earliest-registered input — vat FIFO order.
        ``race`` of no promises breaks immediately with ``failure``.
        """
        inputs = list(promises)
        gathered = Promise(env, label="race[%d]" % len(inputs))
        if not inputs:
            gathered.resolve(Outcome.failure("race() of no promises"))
            return gathered
        state = {"done": False}

        def on_ready(outcome: Outcome) -> None:
            if not state["done"]:
                state["done"] = True
                gathered.resolve(outcome)

        for promise in inputs:
            promise._subscribe(on_ready)
        return gathered


class _OutcomeWaiter:
    """Tags a waiter event as wanting the raw outcome (no raising)."""

    __slots__ = ("event",)

    def __init__(self, event: Event) -> None:
        self.event = event

    @property
    def triggered(self) -> bool:
        return self.event.triggered
