"""The promise data type (the paper's primary contribution).

    "A promise is a place holder for a value that will exist in the future.
     It is created at the time a call is made.  The call computes the value
     of the promise, running in parallel with the program that made the
     call.  When it completes, its results are stored in the promise and
     can then be 'claimed' by the caller."

A promise is in one of two states, *blocked* or *ready*.  Once ready it
stays ready and its value never changes.  ``claim`` waits for readiness and
then returns the normal result or raises the call's exception; ``ready`` is
the non-blocking probe.  Promises are strongly typed: a
:class:`~repro.types.signatures.PromiseType` says what the normal results
and declared exceptions may be, and the runtime enforces it when the promise
resolves — so, unlike MultiLisp futures, no per-access runtime check is ever
needed (benchmark E7 measures exactly this difference).
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from repro.core.exceptions import (
    ArgusError,
    PromiseError,
    PromiseNotReady,
    Signal,
)
from repro.core.outcome import Outcome
from repro.sim.events import Event
from repro.sim.kernel import Environment
from repro.types.checking import TypeViolation, check_results, check_value
from repro.types.signatures import PromiseType

__all__ = ["Promise", "BLOCKED", "READY"]

#: State constants (the paper's two promise states).
BLOCKED = "blocked"
READY = "ready"


class Promise:
    """A typed placeholder for the outcome of an asynchronous call.

    Instances are created by the runtime — by a stream call
    (:mod:`repro.streams`), by ``fork`` (:mod:`repro.concurrency.fork`) — or
    directly by tests.  The *resolver* side calls :meth:`resolve` exactly
    once; the *claimer* side calls :meth:`claim` any number of times.
    """

    def __init__(
        self,
        env: Environment,
        ptype: Optional[PromiseType] = None,
        label: str = "",
    ) -> None:
        if ptype is not None and not isinstance(ptype, PromiseType):
            raise TypeError("ptype must be a PromiseType, got %r" % (ptype,))
        self.env = env
        self.ptype = ptype
        self.label = label
        self.promise_id = env.new_serial("promise")
        #: Simulated time the promise came into existence (call time).
        self.created_at = env.now
        self._outcome: Optional[Outcome] = None
        self._waiters: List[Event] = []
        #: Number of claim operations performed (used by benchmarks).
        self.claim_count = 0
        tracer = env.tracer
        if tracer is not None:
            tracer.emit(
                "promise.created", promise_id=self.promise_id, label=label
            )

    def __repr__(self) -> str:
        tag = " %r" % self.label if self.label else ""
        return "<Promise #%d%s %s>" % (self.promise_id, tag, self.state)

    # ------------------------------------------------------------------
    # Claimer-side interface
    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        """``'blocked'`` or ``'ready'``."""
        return READY if self._outcome is not None else BLOCKED

    def ready(self) -> bool:
        """The paper's ``ready`` operation: non-blocking readiness probe."""
        return self._outcome is not None

    def outcome(self) -> Outcome:
        """The stored outcome; raises :class:`PromiseNotReady` if blocked."""
        if self._outcome is None:
            raise PromiseNotReady("promise %r is not ready" % self)
        return self._outcome

    def claim(self) -> Event:
        """The paper's ``claim`` operation, as a yieldable event.

        From a simulated process::

            value = yield promise.claim()

        The yield blocks until the promise is ready, then delivers the
        normal result — or raises the call's exception (a user
        :class:`~repro.core.exceptions.Signal`, ``unavailable`` or
        ``failure``) into the claiming process.  A promise may be claimed
        multiple times; the same outcome occurs each time.
        """
        self.claim_count += 1
        event = Event(self.env)
        tracer = self.env.tracer
        if tracer is not None:
            ready = self._outcome is not None
            tracer.emit(
                "promise.claimed", promise_id=self.promise_id, ready=ready
            )
            if ready:
                tracer.emit(
                    "promise.claim_latency", promise_id=self.promise_id, wait=0.0
                )
            else:
                # The wait ends when the claim event is delivered, which
                # happens at the promise's resolution time.
                claimed_at = self.env.now

                def _record_wait(_event: Event) -> None:
                    active = self.env.tracer
                    if active is not None:
                        active.emit(
                            "promise.claim_latency",
                            promise_id=self.promise_id,
                            wait=self.env.now - claimed_at,
                        )

                event.callbacks.append(_record_wait)
        if self._outcome is not None:
            self._deliver(event, self._outcome)
        else:
            self._waiters.append(event)
        return event

    def wait(self) -> Event:
        """Block until ready, delivering the :class:`Outcome` (never raises).

        Useful for code that wants to inspect the termination condition
        without exception handling, e.g. the ``synch`` implementation.
        """
        event = Event(self.env)
        if self._outcome is not None:
            event.succeed(self._outcome)
        else:
            self._waiters.append(_OutcomeWaiter(event))  # type: ignore[arg-type]
        return event

    # ------------------------------------------------------------------
    # Resolver-side interface
    # ------------------------------------------------------------------
    def resolve(self, outcome: Outcome) -> None:
        """Move the promise from blocked to ready with *outcome*.

        The transition happens at most once; a second resolution is a
        programming error.  If the promise is typed, the outcome is checked
        against the promise type; a nonconforming outcome is *replaced* by a
        ``failure`` outcome (mirroring the paper's treatment of decode
        errors: bad data arriving for a promise becomes
        ``failure("could not decode")``, never a type hole).
        """
        if not isinstance(outcome, Outcome):
            raise TypeError("resolve requires an Outcome, got %r" % (outcome,))
        if self._outcome is not None:
            raise PromiseError(
                "promise %r is already ready; its value never changes" % self
            )
        self._outcome = self._coerce(outcome)
        tracer = self.env.tracer
        if tracer is not None:
            tracer.emit(
                "promise.resolved",
                promise_id=self.promise_id,
                status=self._outcome.condition,
                age=self.env.now - self.created_at,
                waiters=len(self._waiters),
            )
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            if isinstance(waiter, _OutcomeWaiter):
                if not waiter.event.triggered:
                    waiter.event.succeed(self._outcome)
            elif not waiter.triggered:
                self._deliver(waiter, self._outcome)

    def resolve_normal(self, *results: Any) -> None:
        """Convenience: resolve with a normal outcome."""
        self.resolve(Outcome.normal(*results))

    def resolve_exceptional(self, exception: ArgusError) -> None:
        """Convenience: resolve with an exceptional outcome."""
        self.resolve(Outcome.exceptional(exception))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _coerce(self, outcome: Outcome) -> Outcome:
        if self.ptype is None:
            return outcome
        if outcome.is_normal:
            try:
                check_results(self.ptype.returns, outcome.results)
            except TypeViolation as violation:
                return Outcome.failure(
                    "could not decode: %s" % (violation,)
                )
            return outcome
        exc = outcome.exception
        if isinstance(exc, Signal):
            declared = self.ptype.signals.get(exc.condition)
            if declared is None:
                return Outcome.failure(
                    "undeclared exception %r raised by call" % exc.condition
                )
            sig_args = exc.exception_args()
            if len(sig_args) != len(declared):
                return Outcome.failure(
                    "exception %r has %d results, %d expected"
                    % (exc.condition, len(sig_args), len(declared))
                )
            try:
                for i, (tp, value) in enumerate(zip(declared, sig_args)):
                    check_value(tp, value, "exception result %d" % i)
            except TypeViolation as violation:
                return Outcome.failure("could not decode: %s" % (violation,))
        return outcome

    @staticmethod
    def _deliver(event: Event, outcome: Outcome) -> None:
        if outcome.is_normal:
            results = outcome.results
            if len(results) == 0:
                event.succeed(None)
            elif len(results) == 1:
                event.succeed(results[0])
            else:
                event.succeed(results)
        else:
            event.defused = True
            event.fail(outcome.exception)

    # ------------------------------------------------------------------
    # Combinators (widely useful in examples and composition code)
    # ------------------------------------------------------------------
    @staticmethod
    def all_ready(env: Environment, promises: List["Promise"]) -> Event:
        """Event firing when every promise in *promises* is ready."""
        return env.all_of([p.wait() for p in promises])

    @staticmethod
    def any_ready(env: Environment, promises: List["Promise"]) -> Event:
        """Event firing when at least one promise is ready."""
        return env.any_of([p.wait() for p in promises])

    def on_ready(self, callback: Callable[["Promise"], None]) -> None:
        """Invoke *callback(promise)* once the promise becomes ready.

        This is a runtime-internal hook (the stream receiver uses it to
        release replies in order); application code should prefer
        :meth:`claim`.
        """
        if self._outcome is not None:
            callback(self)
            return
        event = self.wait()

        def run(_event: Event) -> None:
            callback(self)

        event.callbacks.append(run)


class _OutcomeWaiter:
    """Tags a waiter event as wanting the raw outcome (no raising)."""

    __slots__ = ("event",)

    def __init__(self, event: Event) -> None:
        self.event = event

    @property
    def triggered(self) -> bool:
        return self.event.triggered
