"""Repository-level pytest configuration.

Makes the ``src/`` layout importable without installation and loads the
observability fixtures (``traced_env``, ``traced_system``) for both the
test suite and the benchmarks.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

pytest_plugins = ["repro.obs.testing"]
