"""Shared infrastructure for the benchmark harness.

Every benchmark regenerates one experiment from DESIGN.md's per-experiment
index (E1-E12): it sweeps the workload, prints the series the paper's
claim predicts, persists the table under ``benchmarks/results/``, asserts
the qualitative *shape* (who wins, roughly by how much), and feeds one
representative configuration to pytest-benchmark for wall-clock timing.
"""

from __future__ import annotations

import json
import os
from typing import Any, List, Sequence

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def report(experiment: str, title: str, headers: Sequence[str], rows: List[Sequence[Any]]) -> str:
    """Format, print and persist one experiment's table.

    Each table is written twice: the human-readable ``<exp>.txt`` and a
    machine-readable ``<exp>.json`` twin (title, headers, raw rows) for
    downstream tooling.
    """
    widths = [len(str(h)) for h in headers]
    formatted_rows = []
    for row in rows:
        cells = []
        for index, cell in enumerate(row):
            if isinstance(cell, float):
                text = "%.3f" % cell
            else:
                text = str(cell)
            cells.append(text)
            widths[index] = max(widths[index], len(text))
        formatted_rows.append(cells)

    def line(cells):
        return "  ".join(str(cell).rjust(width) for cell, width in zip(cells, widths))

    out = ["", "=== %s: %s ===" % (experiment, title), line(headers)]
    out.append(line(["-" * width for width in widths]))
    for cells in formatted_rows:
        out.append(line(cells))
    text = "\n".join(out)
    print(text)

    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "%s.txt" % experiment.lower())
    with open(path, "w") as handle:
        handle.write(text + "\n")
    json_path = os.path.join(RESULTS_DIR, "%s.json" % experiment.lower())
    with open(json_path, "w") as handle:
        json.dump(
            {
                "experiment": experiment,
                "title": title,
                "headers": list(headers),
                "rows": [list(row) for row in rows],
            },
            handle,
            indent=2,
        )
        handle.write("\n")
    return text
