"""E5 — the three-level cascade: read -> compute -> write.

Paper claim (§4): with the Figure 3-1 program shape, "All calls to read
must start before any calls to compute can be made.  All results from read
must be claimed, and all calls to compute must be started, before any
calls to write can be made" — the composed (coenter) version removes both
barriers.

Reproduced series: completion time, phased vs per-stream composition,
sweeping item count; the composed pipeline's advantage grows with n and
approaches the stage-count factor for compute-bound stages.
"""

from repro.compose import Pipeline, Stage, run_per_stream, run_phased
from repro.entities import ArgusSystem
from repro.types import INT, HandlerType

from .conftest import report

STEP = HandlerType(args=[INT], returns=[INT])
STAGE_COST = 1.0


def build_system():
    system = ArgusSystem(latency=2.0, kernel_overhead=0.1)
    for name, fn in [
        ("reader", lambda x: x + 1000),
        ("computer", lambda x: x * 3),
        ("writer", lambda x: x - 7),
    ]:
        guardian = system.create_guardian(name)

        def make_impl(fn=fn):
            def impl(ctx, x):
                yield ctx.compute(STAGE_COST)
                return fn(x)

            return impl

        guardian.create_handler("step", STEP, make_impl())
    return system


def make_pipeline():
    return Pipeline(
        [Stage("reader", "step"), Stage("computer", "step"), Stage("writer", "step")]
    )


def run_structure(runner, n_items):
    system = build_system()

    def main(ctx):
        results = yield from runner(ctx, make_pipeline(), list(range(n_items)))
        return results

    process = system.create_guardian("client").spawn(main)
    results = system.run(until=process)
    assert results == [(x + 1000) * 3 - 7 for x in range(n_items)]
    return system.now


def test_e5_pipeline_composition(benchmark):
    rows = []
    for n_items in (4, 16, 64):
        phased = run_structure(run_phased, n_items)
        composed = run_structure(run_per_stream, n_items)
        rows.append((n_items, phased, composed, phased / composed))
    report(
        "E5",
        "3-level cascade: phased (Fig 3-1 shape) vs composed (coenter)",
        ["items", "phased", "composed", "speedup"],
        rows,
    )
    by_n = {row[0]: row for row in rows}
    assert by_n[64][3] > 1.5, "composition must clearly win at n=64"
    assert by_n[64][3] > by_n[4][3], "advantage grows with n"

    benchmark(run_structure, run_per_stream, 32)
