"""E7 — promises vs MultiLisp futures: the cost of implicit claiming.

Paper claim (§3.3): "futures ... are inefficient to implement unless
specialized hardware is available, since every object must be examined
each time it is accessed to determine whether or not it is a future."
Promises are strongly typed, so only explicit claim sites pay.

Reproduced series: a vector-arithmetic workload over values produced by
remote stream calls, sweeping the number of accesses per produced value.
Futures pay one examination per access; promises pay one claim per value.
"""

from repro.baselines import FutureRuntime
from repro.entities import ArgusSystem
from repro.streams import StreamConfig
from repro.types import INT, HandlerType

from .conftest import report

PRODUCE = HandlerType(args=[INT], returns=[INT])
CHECK_COST = 0.05  # the software future-tag test per access
N_VALUES = 32


def build_system():
    config = StreamConfig(batch_size=16, reply_batch_size=16, max_buffer_delay=1.0, reply_max_delay=1.0)
    system = ArgusSystem(latency=1.0, kernel_overhead=0.1, stream_config=config)
    server = system.create_guardian("server")

    def produce(ctx, x):
        yield ctx.compute(0.05)
        return x * 2

    server.create_handler("produce", PRODUCE, produce)
    return system


def run_promises(accesses_per_value):
    system = build_system()

    def main(ctx):
        ref = ctx.lookup("server", "produce")
        promises = [ref.stream(index) for index in range(N_VALUES)]
        ref.flush()
        values = []
        for promise in promises:
            values.append((yield promise.claim()))  # the only typed check
        total = 0
        for value in values:
            for _ in range(accesses_per_value):
                total += value  # plain value: zero-cost access
        return total

    process = system.create_guardian("client").spawn(main)
    total = system.run(until=process)
    return system.now, total


def run_futures(accesses_per_value):
    system = build_system()
    runtime = FutureRuntime(system.env, check_cost=CHECK_COST)

    def main(ctx):
        ref = ctx.lookup("server", "produce")
        futures = [runtime.wrap_promise(ref.stream(index)) for index in range(N_VALUES)]
        ref.flush()
        total = 0
        for future in futures:
            for _ in range(accesses_per_value):
                # Every access must examine the operand (implicit claim).
                increment = yield runtime.touch(future)
                total += increment
        return total

    process = system.create_guardian("client").spawn(main)
    total = system.run(until=process)
    return system.now, total, runtime.examinations


def test_e7_promises_vs_futures(benchmark):
    rows = []
    for accesses in (1, 4, 16, 64):
        promise_time, promise_total = run_promises(accesses)
        future_time, future_total, examinations = run_futures(accesses)
        assert promise_total == future_total
        rows.append(
            (
                accesses,
                promise_time,
                future_time,
                future_time / promise_time,
                N_VALUES,  # claims performed by the promise version
                examinations,
            )
        )
    report(
        "E7",
        "promises (explicit claim) vs futures (tag check per access)",
        ["accesses/value", "promise_time", "future_time", "slowdown", "claims", "examinations"],
        rows,
    )
    by_n = {row[0]: row for row in rows}
    # One access per value: comparable.  Many accesses: futures fall behind,
    # linearly in the number of accesses.
    assert by_n[1][3] < 2.0
    assert by_n[64][3] > 3.0
    assert by_n[64][5] == N_VALUES * 64

    benchmark(run_promises, 16)
