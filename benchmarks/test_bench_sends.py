"""E2 — sends omit normal replies.

Paper claim (§2): "in the case of sends, normal replies can be omitted",
further reducing traffic for calls whose reply carries no data.

Reproduced series: reply-direction bytes and message counts for n no-result
calls made as stream calls (with promises, still reply-less on the wire)
vs. calls to a result-bearing handler, plus the abnormal-only reporting.
"""

from repro.entities import ArgusSystem
from repro.streams import StreamConfig
from repro.types import INT, HandlerType

from .conftest import report

WITH_RESULT = HandlerType(args=[INT], returns=[INT])
NO_RESULT = HandlerType(args=[INT])

CONFIG = StreamConfig(
    batch_size=16, reply_batch_size=16, max_buffer_delay=2.0, reply_max_delay=2.0
)


def build_system():
    system = ArgusSystem(latency=5.0, kernel_overhead=0.5, stream_config=CONFIG)
    server = system.create_guardian("server")

    def with_result(ctx, x):
        yield ctx.compute(0.05)
        return x

    def no_result(ctx, x):
        yield ctx.compute(0.05)
        return None

    server.create_handler("with_result", WITH_RESULT, with_result)
    server.create_handler("no_result", NO_RESULT, no_result)
    return system


def run_calls(handler_name, n_calls):
    system = build_system()

    def main(ctx):
        ref = ctx.lookup("server", handler_name)
        for index in range(n_calls):
            ref.stream_statement(index)
        yield ref.synch()
        return ref.stream_sender.stats.snapshot()["sends_made"]

    process = system.create_guardian("client").spawn(main)
    sends = system.run(until=process)
    stats = system.stats()
    return system.now, stats["bytes_sent"], stats["messages_sent"], sends


def test_e2_sends_omit_replies(benchmark):
    rows = []
    for n_calls in (8, 32, 128):
        t_result, bytes_result, msgs_result, _ = run_calls("with_result", n_calls)
        t_send, bytes_send, msgs_send, sends = run_calls("no_result", n_calls)
        assert sends == n_calls, "no-result stream calls must go as sends"
        rows.append(
            (n_calls, bytes_result, bytes_send, bytes_result - bytes_send, msgs_result, msgs_send)
        )
    report(
        "E2",
        "stream calls vs sends (wire bytes, messages)",
        ["n_calls", "bytes_w_result", "bytes_send", "bytes_saved", "msgs_w_result", "msgs_send"],
        rows,
    )
    for row in rows:
        assert row[2] < row[1], "sends must move fewer bytes"

    benchmark(run_calls, "no_result", 64)
