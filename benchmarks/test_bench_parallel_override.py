"""E13 — the §2.1 parallel-execution override (extension experiment).

Paper (§2.1): "We may provide some explicit overrides to allow more
sophisticated programs that process calls on the same stream in
parallel."  The paper does not evaluate this; we do, as the natural
ablation: same workload, sequential vs parallel groups, sweeping handler
cost.  Replies must still resolve in call order (verified inline).

Expected shape: parallelism wins in proportion to handler cost; for free
handlers the two modes tie (the transport, not execution, dominates).
"""

from repro.entities import ArgusSystem
from repro.streams import StreamConfig
from repro.types import INT, HandlerType

from .conftest import report

WORK = HandlerType(args=[INT], returns=[INT])
N_CALLS = 16


def run_mode(parallel, handler_cost):
    config = StreamConfig(batch_size=N_CALLS, reply_batch_size=N_CALLS, max_buffer_delay=1.0, reply_max_delay=1.0)
    system = ArgusSystem(latency=2.0, kernel_overhead=0.1, stream_config=config)
    server = system.create_guardian("server")
    server.create_group("work", parallel=parallel)

    def work(ctx, x):
        if handler_cost > 0:
            yield ctx.compute(handler_cost)
        return x

    server.create_handler("work", WORK, work, group="work")

    def main(ctx):
        ref = ctx.lookup("server", "work")
        promises = [ref.stream(index) for index in range(N_CALLS)]
        ref.flush()
        values = []
        for index, promise in enumerate(promises):
            values.append((yield promise.claim()))
            # In-order resolution must hold in both modes.
            assert all(p.ready() for p in promises[: index + 1])
        return values

    process = system.create_guardian("client").spawn(main)
    values = system.run(until=process)
    assert values == list(range(N_CALLS))
    return system.now


def test_e13_parallel_override(benchmark):
    rows = []
    for handler_cost in (0.0, 0.5, 2.0, 8.0):
        sequential = run_mode(False, handler_cost)
        parallel = run_mode(True, handler_cost)
        rows.append((handler_cost, sequential, parallel, sequential / parallel))
    report(
        "E13",
        "sequential vs parallel same-stream execution (n=%d)" % N_CALLS,
        ["handler_cost", "sequential", "parallel", "speedup"],
        rows,
    )
    by_cost = {row[0]: row for row in rows}
    # Free handlers: no benefit.  Costly handlers: up to ~n-fold.
    assert by_cost[0.0][3] < 1.2
    assert by_cost[2.0][3] > 4.0
    assert by_cost[8.0][3] > by_cost[0.5][3]

    benchmark(run_mode, True, 0.5)
