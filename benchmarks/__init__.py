"""Benchmark package (E1-E12; see DESIGN.md per-experiment index)."""
