"""E9 — broken streams: detection latency and exception mapping.

Paper claims (§2, §3): the system "tries hard to deliver messages before
breaking a stream"; breaks map outstanding calls to ``unavailable`` (or
``failure`` when permanent); after a break, calls fail fast rather than
hanging.

Reproduced series: time from fault injection to promise resolution, for
crash/partition (→ unavailable) and guardian destruction (→ failure),
sweeping the retransmission budget; plus fail-fast latency on an already
broken stream.
"""


from repro.core import Unavailable
from repro.entities import ArgusSystem
from repro.net import schedule_crash, schedule_partition
from repro.streams import StreamConfig
from repro.types import INT, HandlerType

from .conftest import report

ECHO = HandlerType(args=[INT], returns=[INT])
FAULT_AT = 1.0


def build_system(config):
    system = ArgusSystem(latency=1.0, kernel_overhead=0.1, stream_config=config)
    server = system.create_guardian("server")

    def echo(ctx, x):
        yield ctx.compute(0.05)
        return x

    server.create_handler("echo", ECHO, echo)
    return system


def run_fault(kind, max_retries):
    config = StreamConfig(batch_size=4, max_buffer_delay=0.5, rto=4.0, max_retries=max_retries)
    system = build_system(config)
    descriptor = system.guardian("server").descriptor("echo")
    # Create the client first: fault scheduling validates node names eagerly.
    client = system.create_guardian("client")
    if kind == "partition":
        schedule_partition(system.network, "node:client", "node:server", at=0.0)
    elif kind == "crash":
        schedule_crash(system.network, "node:server", at=0.0)
    elif kind == "destroyed":
        system.guardian("server").destroy()

    def main(ctx):
        yield ctx.sleep(FAULT_AT)
        echo = ctx.bind(descriptor)
        promise = echo.stream(1)
        echo.flush()
        outcome = yield promise.wait()
        return (outcome.condition, ctx.now - FAULT_AT)

    process = client.spawn(main)
    condition, latency = system.run(until=process)
    return condition, latency


def run_fail_fast():
    """Calls on an already-broken (non-restarting) stream fail instantly."""
    config = StreamConfig(
        batch_size=4, max_buffer_delay=0.5, rto=4.0, max_retries=1, auto_restart=False
    )
    system = build_system(config)
    client = system.create_guardian("client")
    schedule_partition(system.network, "node:client", "node:server", at=0.0)

    def main(ctx):
        echo = ctx.lookup("server", "echo")
        promise = echo.stream(1)
        echo.flush()
        yield promise.wait()
        before = ctx.now
        try:
            echo.stream(2)
        except Unavailable:
            pass
        return ctx.now - before

    process = client.spawn(main)
    return system.run(until=process)


def test_e9_break_detection(benchmark):
    rows = []
    for kind in ("partition", "crash", "destroyed"):
        for max_retries in (1, 3, 6):
            condition, latency = run_fault(kind, max_retries)
            rows.append((kind, max_retries, condition, latency))
    fail_fast = run_fail_fast()
    rows.append(("already-broken", "-", "fail-fast", fail_fast))
    report(
        "E9",
        "break detection latency and exception mapping",
        ["fault", "max_retries", "condition", "latency"],
        rows,
    )

    by_key = {(row[0], row[1]): row for row in rows[:-1]}
    # Mapping: communication faults -> unavailable; missing guardian ->
    # failure (permanent), detected fast via the refusal reply.
    for retries in (1, 3, 6):
        assert by_key[("partition", retries)][2] == "unavailable"
        assert by_key[("crash", retries)][2] == "unavailable"
        assert by_key[("destroyed", retries)][2] == "failure"
    # "Tries hard": a larger retry budget delays the break.
    assert by_key[("partition", 6)][3] > by_key[("partition", 1)][3]
    # Permanent failures are detected much faster than timeouts.
    assert by_key[("destroyed", 3)][3] < by_key[("partition", 3)][3]
    # Fail-fast on a broken stream costs no simulated time at all.
    assert fail_fast == 0.0

    benchmark(run_fault, "partition", 1)
