"""E3 — Figure 3-1: the grades program vs the RPC-only version.

Paper claim (§3.1): "This example uses stream calls both to overlap
processing of calls and to obtain the benefits of buffering messages for
calls and replies.  A considerable amount of overlapping is possible."

Reproduced series: completion time of the RPC grades program vs the
Figure 3-1 program, sweeping the roster size.
"""

from repro.apps import build_grades_world, make_roster, program_fig_3_1, program_rpc

from .conftest import report

WORLD_PARAMS = dict(latency=5.0, kernel_overhead=0.5, record_cost=0.3, print_cost=0.1)


def run_program(program, n_students):
    world = build_grades_world(**WORLD_PARAMS)
    roster = make_roster(n_students)

    def main(ctx):
        count = yield from program(ctx, roster)
        return count

    process = world.client.spawn(main)
    world.system.run(until=process)
    assert len(world.printed) == n_students
    return world.system.now, world.system.stats()["messages_sent"]


def test_e3_fig31_vs_rpc(benchmark):
    rows = []
    for n_students in (5, 20, 80):
        rpc_time, rpc_messages = run_program(program_rpc, n_students)
        fig_time, fig_messages = run_program(program_fig_3_1, n_students)
        rows.append(
            (n_students, rpc_time, fig_time, rpc_time / fig_time, rpc_messages, fig_messages)
        )
    report(
        "E3",
        "grades: RPC version vs Figure 3-1 (time, messages)",
        ["students", "rpc_time", "fig31_time", "speedup", "rpc_msgs", "fig31_msgs"],
        rows,
    )
    by_n = {row[0]: row for row in rows}
    assert by_n[20][3] > 2.0, "Fig 3-1 should beat RPC clearly at n=20"
    assert by_n[80][3] > by_n[5][3], "advantage grows with roster size"

    benchmark(run_program, program_fig_3_1, 40)
