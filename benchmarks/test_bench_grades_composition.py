"""E4 — composing the grades streams: Fig 3-1 vs Fig 4-1 vs Fig 4-2.

Paper claim (§4): "the program shown in Figure 3-1 does not do what we
want since it delays streaming to the printer until all calls to the
database have been started.  Instead, we would like to stream the results
from the database to the printer as they become ready ...  Obviously, this
overlapping of recording and printing becomes more important as the number
of calls increases."

Reproduced series: completion time of the three structures, sweeping the
roster size; the composed versions (4-1, 4-2) must converge to the same
cost and beat 3-1, increasingly with n.
"""

from repro.apps import (
    build_grades_world,
    make_roster,
    program_fig_3_1,
    program_fig_4_1,
    program_fig_4_2,
)

from .conftest import report

WORLD_PARAMS = dict(latency=5.0, kernel_overhead=0.2, record_cost=0.5, print_cost=0.4)

#: Client CPU per loop iteration (argument preparation / make_string):
#: the quantity that makes Figure 3-1's initiate-everything-first barrier
#: cost real time.
STEP_COST = 0.4


def run_program(program, n_students):
    world = build_grades_world(**WORLD_PARAMS)
    roster = make_roster(n_students)

    def main(ctx):
        count = yield from program(ctx, roster, step_cost=STEP_COST)
        return count

    process = world.client.spawn(main)
    world.system.run(until=process)
    assert len(world.printed) == n_students
    return world.system.now


def test_e4_composition_overlap(benchmark):
    rows = []
    for n_students in (5, 20, 80, 160):
        t31 = run_program(program_fig_3_1, n_students)
        t41 = run_program(program_fig_4_1, n_students)
        t42 = run_program(program_fig_4_2, n_students)
        rows.append((n_students, t31, t41, t42, t31 / t42))
    report(
        "E4",
        "grades composition: Fig 3-1 vs forks (4-1) vs coenter (4-2)",
        ["students", "fig31", "fig41_forks", "fig42_coenter", "fig31/fig42"],
        rows,
    )
    by_n = {row[0]: row for row in rows}
    # Composition wins, and more so as n grows ("this overlapping ...
    # becomes more important as the number of calls increases").
    assert by_n[80][4] > 1.1
    assert by_n[160][4] > 1.25
    assert by_n[160][4] >= by_n[20][4]
    # Forks and coenter express the same overlap: near-identical cost.
    for row in rows:
        assert abs(row[2] - row[3]) / row[3] < 0.25

    benchmark(run_program, program_fig_4_2, 40)
