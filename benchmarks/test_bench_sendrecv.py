"""E8 — promises/streams vs explicit send/receive.

Paper claim (§5): "The send/receive approach can allow programs to achieve
high throughput, but it leads to complex and ill-structured programs ...
it is entirely the responsibility of the user code to relate reply
messages with the calls that caused them.  Promises and streams, however,
retain high throughput without imposing this burden."

Reproduced series: completion time (comparable) and the count of
user-level pairing operations (zero for promises, 2n for send/receive),
sweeping n.
"""

from repro.baselines import DatagramBatch, Mailbox, PairingTable
from repro.entities import ArgusSystem
from repro.net import Network
from repro.sim import Environment
from repro.streams import StreamConfig
from repro.types import INT, HandlerType

from .conftest import report

ECHO = HandlerType(args=[INT], returns=[INT])
LATENCY = 5.0
OVERHEAD = 0.5
HANDLER_COST = 0.05
BATCH = 16


def run_promises(n_calls):
    config = StreamConfig(batch_size=BATCH, reply_batch_size=BATCH, max_buffer_delay=1.0, reply_max_delay=1.0)
    system = ArgusSystem(latency=LATENCY, kernel_overhead=OVERHEAD, stream_config=config)
    server = system.create_guardian("server")

    def echo(ctx, x):
        yield ctx.compute(HANDLER_COST)
        return x + 1

    server.create_handler("echo", ECHO, echo)

    def main(ctx):
        ref = ctx.lookup("server", "echo")
        promises = [ref.stream(index) for index in range(n_calls)]
        ref.flush()
        values = []
        for promise in promises:
            values.append((yield promise.claim()))
        return values

    process = system.create_guardian("client").spawn(main)
    values = system.run(until=process)
    assert values == [index + 1 for index in range(n_calls)]
    # Pairing operations: zero — the runtime does all matching.
    return system.now, 0


def run_sendrecv(n_calls):
    """Hand-rolled batched messaging with user-level reply pairing."""
    env = Environment()
    network = Network(env, latency=LATENCY, kernel_overhead=OVERHEAD)
    client_node = network.add_node("client")
    server_node = network.add_node("server")
    client_box = Mailbox(env, network, client_node, "mbox:client")
    server_box = Mailbox(env, network, server_node, "mbox:server")
    pairing = PairingTable()

    def server(env):
        served = 0
        while served < n_calls:
            batch = yield server_box.receive()
            replies = []
            for conversation_id, value, _size in batch.entries:
                yield env.timeout(HANDLER_COST)
                replies.append((conversation_id, value + 1, 16))
                served += 1
            server_box.send_batch("client", "mbox:client", DatagramBatch(replies))

    def client(env):
        # Send requests in manual batches of BATCH.
        pending = []
        for value in range(n_calls):
            conversation_id = pairing.new_conversation(context=value)
            pending.append((conversation_id, value, 16))
            if len(pending) >= BATCH:
                client_box.send_batch("server", "mbox:server", DatagramBatch(pending))
                pending = []
        if pending:
            client_box.send_batch("server", "mbox:server", DatagramBatch(pending))
        results = {}
        while len(results) < n_calls:
            batch = yield client_box.receive()
            for conversation_id, reply, _size in batch.entries:
                original = pairing.match(conversation_id)  # the user burden
                results[original] = reply
        return results

    env.process(server(env))
    process = env.process(client(env))
    results = env.run(until=process)
    assert results == {index: index + 1 for index in range(n_calls)}
    return env.now, pairing.operations


def test_e8_sendrecv_vs_promises(benchmark):
    rows = []
    for n_calls in (16, 64, 256):
        promise_time, promise_pairing = run_promises(n_calls)
        sendrecv_time, sendrecv_pairing = run_sendrecv(n_calls)
        rows.append(
            (
                n_calls,
                promise_time,
                sendrecv_time,
                promise_time / sendrecv_time,
                promise_pairing,
                sendrecv_pairing,
            )
        )
    report(
        "E8",
        "promises/streams vs hand-rolled send/receive",
        ["n_calls", "promise_time", "sendrecv_time", "ratio", "pairing_promise", "pairing_sendrecv"],
        rows,
    )
    for row in rows:
        # Comparable throughput (within 2x either way): the paper concedes
        # send/receive CAN match streams.
        assert 0.5 < row[3] < 2.0
        # But the burden: 2 pairing operations per call vs zero.
        assert row[4] == 0
        assert row[5] == 2 * row[0]

    benchmark(run_promises, 64)
