"""E1 — stream calls vs RPC: buffering amortizes per-message overhead.

Paper claim (§2): "There are two reasons for using stream calls instead of
RPCs: they allow the caller to run in parallel with the sending and
processing of the call, and they reduce the cost of transmitting the call
and reply messages. ...  Buffering allows us to amortize the overhead of
kernel calls and the transmission delays for messages over several calls,
especially for small calls and replies."

Reproduced series: completion time and physical-message count for n small
calls, RPC vs stream, sweeping n; plus the batch-size ablation from
DESIGN.md §5.
"""

from repro.entities import ArgusSystem
from repro.streams import StreamConfig
from repro.types import INT, HandlerType

from .conftest import report

ECHO = HandlerType(args=[INT], returns=[INT])

LATENCY = 5.0
KERNEL_OVERHEAD = 0.5
HANDLER_COST = 0.05


def build_system(stream_config):
    system = ArgusSystem(
        latency=LATENCY, kernel_overhead=KERNEL_OVERHEAD, stream_config=stream_config
    )
    server = system.create_guardian("server")

    def echo(ctx, x):
        yield ctx.compute(HANDLER_COST)
        return x

    server.create_handler("echo", ECHO, echo)
    return system


def run_rpc(n_calls):
    system = build_system(StreamConfig().unbuffered())

    def main(ctx):
        echo = ctx.lookup("server", "echo")
        for index in range(n_calls):
            yield echo.call(index)

    process = system.create_guardian("client").spawn(main)
    system.run(until=process)
    return system.now, system.stats()["messages_sent"]


def run_stream(n_calls, batch_size=16):
    config = StreamConfig(
        batch_size=batch_size,
        reply_batch_size=batch_size,
        max_buffer_delay=2.0,
        reply_max_delay=2.0,
    )
    system = build_system(config)

    def main(ctx):
        echo = ctx.lookup("server", "echo")
        promises = [echo.stream(index) for index in range(n_calls)]
        echo.flush()
        for promise in promises:
            yield promise.claim()

    process = system.create_guardian("client").spawn(main)
    system.run(until=process)
    return system.now, system.stats()["messages_sent"]


def test_e1_stream_vs_rpc(benchmark):
    rows = []
    for n_calls in (1, 4, 16, 64, 256):
        rpc_time, rpc_messages = run_rpc(n_calls)
        stream_time, stream_messages = run_stream(n_calls)
        rows.append(
            (
                n_calls,
                rpc_time,
                stream_time,
                rpc_time / stream_time,
                rpc_messages,
                stream_messages,
            )
        )
    report(
        "E1",
        "RPC vs stream calls (simulated completion time, messages)",
        ["n_calls", "rpc_time", "stream_time", "speedup", "rpc_msgs", "stream_msgs"],
        rows,
    )

    # Shape: streams win, increasingly with n; messages collapse by ~batch.
    by_n = {row[0]: row for row in rows}
    assert by_n[64][3] > 3.0, "streams should beat RPC by >3x at n=64"
    assert by_n[256][3] > by_n[4][3], "the advantage should grow with n"
    assert by_n[256][5] < by_n[256][4] / 8, "batching should slash message count"
    # At n=1 there is nothing to amortize: times are comparable.
    assert by_n[1][1] == by_n[1][2] or abs(by_n[1][1] - by_n[1][2]) < 3 * LATENCY

    benchmark(run_stream, 64)


def test_e1_ablation_batch_size(benchmark):
    """DESIGN.md §5 ablation: sweep the buffer size at fixed n."""
    n_calls = 128
    rows = []
    for batch_size in (1, 2, 4, 8, 16, 32, 64):
        duration, messages = run_stream(n_calls, batch_size=batch_size)
        rows.append((batch_size, duration, messages))
    report(
        "E1b",
        "batch-size ablation at n=%d" % n_calls,
        ["batch_size", "time", "messages"],
        rows,
    )
    times = [row[1] for row in rows]
    assert times[-1] < times[0], "bigger batches must be faster overall"
    messages = [row[2] for row in rows]
    assert messages == sorted(messages, reverse=True), "messages fall with batch size"

    benchmark(run_stream, n_calls, 32)
