"""Wall-clock microbenchmarks for the simulator's hot path.

Unlike the E1-E12 benchmarks (which measure *simulated* time and wire
traffic to reproduce the paper's claims), these measure *real* wall-clock
throughput of the simulator itself: events/sec through the bare kernel,
messages/sec through the network layer, and end-to-end stream calls/sec.
``run_bench.py`` writes the machine-readable ``BENCH_PR2.json`` trajectory
file at the repository root.
"""
