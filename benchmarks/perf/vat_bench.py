"""Pending-promise scaling: vat continuations vs. blocking-claim processes.

The paper's ``claim`` forces every outstanding promise to have a consumer
process blocked in it — one generator, one event subscription, one
calendar entry each.  The PR 6 continuation layer replaces all of that
with one vat-queue entry per promise.  This benchmark holds ``n`` pending
promises (default 10^5) both ways, resolves them all, and compares:

* wall-clock seconds for the whole create → pend → resolve → consume run;
* peak traced memory (``tracemalloc``) over that run;
* simulated processes created per pending promise (n vs. 0).

A third scenario, ``bare``, creates and resolves the same promises with
no consumer at all; subtracting its peak isolates the *marginal* cost of
the consumption mechanism itself (``consumer_memory_reduction``), which
is the number the tentpole claim is about — the promises exist in every
variant, only the way they are consumed differs.

Results go to ``BENCH_PR6.json`` at the repository root.  ``--check``
gates the structural claim for CI perf-smoke: at ``n`` pending promises
the blocking side must cost at least ``--min-process-reduction`` (default
10x) more processes and ``--min-memory-reduction`` (default 10x) more
per-consumer peak memory than the vat side.

Usage::

    PYTHONPATH=src python benchmarks/perf/vat_bench.py            # full run
    PYTHONPATH=src python benchmarks/perf/vat_bench.py --quick --check
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
import tracemalloc

HERE = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(os.path.dirname(HERE))
DEFAULT_OUTPUT = os.path.join(REPO_ROOT, "BENCH_PR6.json")

if os.path.join(REPO_ROOT, "src") not in sys.path:
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.core.outcome import Outcome  # noqa: E402
from repro.core.promise import Promise  # noqa: E402
from repro.sim.kernel import Environment  # noqa: E402

N_FULL = 100_000
N_QUICK = 10_000


def pend_blocking(n: int) -> int:
    """n pending promises, each consumed by a blocking-claim process."""
    env = Environment()
    promises = [Promise(env) for _ in range(n)]
    state = {"consumed": 0}

    def claimer(promise):
        value = yield promise.claim()
        assert value == 1
        state["consumed"] += 1

    for promise in promises:
        env.process(claimer(promise))

    def resolve_all():
        for promise in promises:
            promise.resolve(Outcome.normal(1))

    env.call_in(1.0, resolve_all)
    env.run()
    assert state["consumed"] == n
    return env._next_pid  # processes created


def pend_vat(n: int) -> int:
    """n pending promises, each consumed by a vat continuation."""
    env = Environment()
    promises = [Promise(env) for _ in range(n)]
    state = {"consumed": 0}

    def consume(outcome):
        assert outcome.results == (1,)
        state["consumed"] += 1

    for promise in promises:
        promise.on_resolved(consume)

    def resolve_all():
        for promise in promises:
            promise.resolve(Outcome.normal(1))

    env.call_in(1.0, resolve_all)
    env.run()
    assert state["consumed"] == n
    return env._next_pid  # processes created


def pend_bare(n: int) -> int:
    """n pending promises with no consumer: the shared substrate cost."""
    env = Environment()
    promises = [Promise(env) for _ in range(n)]

    def resolve_all():
        for promise in promises:
            promise.resolve(Outcome.normal(1))

    env.call_in(1.0, resolve_all)
    env.run()
    assert all(promise.ready() for promise in promises)
    return env._next_pid


SCENARIOS = {"bare": pend_bare, "blocking": pend_blocking, "vat": pend_vat}


def measure(scenario, n: int, repeats: int) -> dict:
    """Wall time (best of *repeats*, untraced) plus one tracemalloc pass."""
    best = float("inf")
    processes = 0
    for _ in range(repeats):
        start = time.perf_counter()
        processes = scenario(n)
        best = min(best, time.perf_counter() - start)
    tracemalloc.start()
    scenario(n)
    _current, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return {
        "n": n,
        "seconds": best,
        "rate": n / best,
        "peak_bytes": peak,
        "bytes_per_pending": peak / n,
        "processes": processes,
        "processes_per_pending": processes / n,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small n for CI smoke")
    parser.add_argument("--n", type=int, default=None, help="override pending count")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--output", default=DEFAULT_OUTPUT)
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero unless the vat side wins by the required margins",
    )
    parser.add_argument("--min-process-reduction", type=float, default=10.0)
    parser.add_argument("--min-memory-reduction", type=float, default=10.0)
    args = parser.parse_args(argv)

    n = args.n if args.n is not None else (N_QUICK if args.quick else N_FULL)
    results = {}
    for name, scenario in SCENARIOS.items():
        print("measuring %s (n=%d) ..." % (name, n), flush=True)
        results[name] = measure(scenario, n, args.repeats)
        print(
            "  %s: %.4fs  peak %.1f MiB  %d processes"
            % (
                name,
                results[name]["seconds"],
                results[name]["peak_bytes"] / 2**20,
                results[name]["processes"],
            ),
            flush=True,
        )

    bare, blocking, vat = results["bare"], results["blocking"], results["vat"]
    blocking_overhead = blocking["peak_bytes"] - bare["peak_bytes"]
    vat_overhead = max(vat["peak_bytes"] - bare["peak_bytes"], 1)
    comparison = {
        "speedup": blocking["seconds"] / vat["seconds"],
        "total_memory_reduction": blocking["peak_bytes"] / vat["peak_bytes"],
        "consumer_bytes_per_pending": {
            "blocking": blocking_overhead / n,
            "vat": vat_overhead / n,
        },
        "consumer_memory_reduction": blocking_overhead / vat_overhead,
        # The vat side needs no process at all; clamp the denominator so
        # the ratio stays finite (and honest: "per process it does use").
        "process_reduction": blocking["processes"] / max(vat["processes"], 1),
    }
    report = {"pr": 6, "mode": "quick" if args.quick else "full",
              "benchmarks": results, "comparison": comparison}
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("wrote %s" % args.output)
    print(
        "  vat vs blocking: %.2fx faster, %.2fx less total peak memory, "
        "%.1fx less per-consumer memory, %.0fx fewer processes"
        % (
            comparison["speedup"],
            comparison["total_memory_reduction"],
            comparison["consumer_memory_reduction"],
            comparison["process_reduction"],
        )
    )

    if args.check:
        failed = False
        if comparison["process_reduction"] < args.min_process_reduction:
            print(
                "gate FAILED: process reduction %.1fx < required %.1fx"
                % (comparison["process_reduction"], args.min_process_reduction)
            )
            failed = True
        if comparison["consumer_memory_reduction"] < args.min_memory_reduction:
            print(
                "gate FAILED: consumer memory reduction %.1fx < required %.1fx"
                % (
                    comparison["consumer_memory_reduction"],
                    args.min_memory_reduction,
                )
            )
            failed = True
        if failed:
            return 1
        print("gate ok (process >= %.1fx, memory >= %.1fx)"
              % (args.min_process_reduction, args.min_memory_reduction))
    return 0


if __name__ == "__main__":
    sys.exit(main())
