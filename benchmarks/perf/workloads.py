"""The three hot-path workloads measured by ``run_bench.py``.

Each workload is a plain function ``(n) -> units`` that builds a fresh
world, drives ``n`` units of simulated work to completion and returns the
unit count actually performed (so the caller can turn wall-clock seconds
into a units/sec rate and sanity-check the run did what it claims).

The "before" numbers in ``baseline_pr2.json`` were recorded by running
these same workloads against the unoptimized tree, so fresh runs are
directly comparable to the committed baseline.
"""

from __future__ import annotations

from repro.entities import ArgusSystem
from repro.net.message import Message
from repro.net.network import Network
from repro.sim.kernel import Environment
from repro.streams import StreamConfig
from repro.types import INT, HandlerType

__all__ = ["kernel_events", "network_messages", "stream_calls", "WORKLOADS"]

ECHO = HandlerType(args=[INT], returns=[INT])

# E1 world parameters (benchmarks/test_bench_stream_vs_rpc.py).
LATENCY = 5.0
KERNEL_OVERHEAD = 0.5
HANDLER_COST = 0.05


def kernel_events(n: int) -> int:
    """Events/sec through the bare kernel: schedule and fire *n* timers.

    Spreads deadlines over a window so the heap sees realistic churn
    (push/pop interleaving) rather than one monotone drain.
    """
    env = Environment()
    fired = []
    append = fired.append

    def record(event) -> None:
        append(event)

    for index in range(n):
        timer = env.timeout((index % 97) * 0.25)
        timer.callbacks.append(record)
    env.run()
    assert len(fired) == n
    return n


def network_messages(n: int) -> int:
    """Messages/sec through :class:`Network`: *n* remote datagrams a->b."""
    env = Environment()
    network = Network(env, latency=1.0, kernel_overhead=0.1)
    network.add_node("a")
    receiver = network.add_node("b")
    delivered = []
    receiver.register("inbox", delivered.append)
    for index in range(n):
        network.send(Message("a", "b", "inbox", index, 32))
    env.run()
    assert len(delivered) == n
    return n


def stream_calls(n: int) -> int:
    """End-to-end stream calls/sec for the E1 stream-vs-RPC scenario.

    A client streams *n* echo calls (batch size 16), flushes, and claims
    every promise — the full sender/network/receiver/dispatch/reply path.
    """
    # rto is effectively infinite: the client buffers every call up front,
    # so at large n the first ack legitimately takes longer than any
    # realistic retransmission budget; retries would only distort the
    # wall-clock measurement with extra (simulated-lost) traffic.
    # Legacy fixed-function transport: this workload is the BENCH_PR2
    # baseline, so its numbers must stay comparable across PRs (the
    # adaptive transport is measured separately in transport_bench.py).
    config = StreamConfig.legacy(
        batch_size=16,
        reply_batch_size=16,
        max_buffer_delay=2.0,
        reply_max_delay=2.0,
        rto=1e9,
    )
    system = ArgusSystem(
        latency=LATENCY, kernel_overhead=KERNEL_OVERHEAD, stream_config=config
    )
    server = system.create_guardian("server")

    def echo(ctx, x):
        yield ctx.compute(HANDLER_COST)
        return x

    server.create_handler("echo", ECHO, echo)

    def main(ctx):
        ref = ctx.lookup("server", "echo")
        promises = [ref.stream(index) for index in range(n)]
        ref.flush()
        total = 0
        for promise in promises:
            total += yield promise.claim()
        return total, ref.stream_sender.stats.snapshot()

    process = system.create_guardian("client").spawn(main)
    total, sender_stats = system.run(until=process)
    assert total == n * (n - 1) // 2
    assert sender_stats["calls_made"] == n
    assert sender_stats["breaks"] == 0
    return n


#: name -> (workload, full-run n, --quick n)
WORKLOADS = {
    "kernel_events": (kernel_events, 200_000, 20_000),
    "network_messages": (network_messages, 20_000, 2_000),
    "stream_calls": (stream_calls, 20_000, 2_000),
}
