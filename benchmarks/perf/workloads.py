"""The hot-path workloads measured by ``run_bench.py``.

Each workload is a plain function ``(n) -> units`` that builds a fresh
world, drives ``n`` units of simulated work to completion and returns the
unit count actually performed (so the caller can turn wall-clock seconds
into a units/sec rate and sanity-check the run did what it claims).

The "before" numbers in ``baseline_pr7.json`` were recorded by running
these same workloads against the pre-PR-7 tree (heapq kernel, per-value
struct codecs), so fresh runs are directly comparable to the committed
baseline.

History: ``kernel_events`` originally (BENCH_PR2) measured Timeout-object
churn.  PR 7 re-points it at the kernel's bare callback lane — the path
every network delivery, RTO timer, alarm and vat drain actually takes —
and keeps the original workload as ``kernel_events_legacy`` so the old
number stays measurable.  Both variants were re-baselined on the old
kernel before the timer-wheel change landed.
"""

from __future__ import annotations

from repro.encoding.transmit import ArgsCodec
from repro.entities import ArgusSystem
from repro.net.message import Message
from repro.net.network import Network
from repro.sim.alarm import Alarm
from repro.sim.kernel import Environment
from repro.streams import StreamConfig
from repro.types import INT, REAL, STRING, ArrayOf, HandlerType, RecordOf

__all__ = [
    "kernel_events",
    "kernel_events_legacy",
    "timer_wheel",
    "network_messages",
    "network_messages_legacy",
    "stream_calls",
    "codec_bytes",
    "WORKLOADS",
]

ECHO = HandlerType(args=[INT], returns=[INT])

# E1 world parameters (benchmarks/test_bench_stream_vs_rpc.py).
LATENCY = 5.0
KERNEL_OVERHEAD = 0.5
HANDLER_COST = 0.05

#: A representative record-heavy signature for the codec microbenchmark.
CODEC_TYPE = HandlerType(
    args=[INT, STRING, ArrayOf(INT), RecordOf({"name": STRING, "score": REAL})],
    returns=[ArrayOf(STRING)],
)
CODEC_ARGS = (
    7,
    "promise",
    [1, 2, 3, 4, 5, 6, 7, 8],
    {"name": "liskov", "score": 19.88},
)


def kernel_events(n: int) -> int:
    """Events/sec through the kernel's callback lane.

    Schedules and fires *n* bare ``call_at`` timers — the path every
    network delivery, retransmission timeout, alarm and vat drain takes.
    Deadlines spread over a 97-slot window so the calendar sees realistic
    churn (interleaved insert/fire) rather than one monotone drain.
    """
    env = Environment()
    fired = []
    append = fired.append
    call_at = env.call_at
    for index in range(n):
        call_at((index % 97) * 0.25, append, index)
    env.run()
    assert len(fired) == n
    return n


def kernel_events_legacy(n: int) -> int:
    """The original BENCH_PR2 kernel workload: Timeout-object churn.

    Kept verbatim so the PR 2 number stays measurable; the per-event cost
    here is dominated by Event/Timeout construction, which is why PR 7's
    headline ``kernel_events`` measures the callback lane instead.
    """
    env = Environment()
    fired = []
    append = fired.append

    def record(event) -> None:
        append(event)

    for index in range(n):
        timer = env.timeout((index % 97) * 0.25)
        timer.callbacks.append(record)
    env.run()
    assert len(fired) == n
    return n


def timer_wheel(n: int) -> int:
    """Alarm churn: arm/re-arm/cancel over a small pool, RTO-style.

    Exercises exactly what the transport does with its retransmission
    and flush alarms: push a deadline back on every packet, cancel some,
    let a few fire as simulated time advances.  Units are alarm
    operations.
    """
    env = Environment()
    fired = [0]

    def on_fire() -> None:
        fired[0] += 1

    alarms = [Alarm(env, on_fire) for _ in range(32)]
    now_plus = 0.25
    for index in range(n):
        alarm = alarms[index & 31]
        alarm.arm(0.5 + (index % 7) * 0.25)
        if index % 5 == 3:
            alarm.cancel()
        if (index & 63) == 63:
            env.run(env.now + now_plus)
    env.run()
    assert fired[0] > 0
    return n


def network_messages(n: int) -> int:
    """Messages/sec through :class:`Network`: *n* remote datagrams a->b.

    Datagrams go out ``want_done=False``, exactly as every production
    sender in this repo issues them (stream transport, guardian RPC,
    send/receive baselines).  Sends are paced in chunks of 256 with the
    calendar drained in between, so the in-flight population stays
    bounded the way any real run's does (the NIC spaces sends 0.1 apart
    against a 1.0 latency, so genuine steady-state depth is ~11
    messages) instead of holding all *n* datagrams live at once.

    History: the original BENCH_PR2 shape — one unbounded burst of
    default (``want_done=True``) sends — is kept verbatim as
    :func:`network_messages_legacy`; both variants' "before" rates in
    ``baseline_pr7.json`` were measured on the pre-PR-7 engine.
    """
    env = Environment()
    network = Network(env, latency=1.0, kernel_overhead=0.1)
    network.add_node("a")
    receiver = network.add_node("b")
    delivered = []
    receiver.register("inbox", delivered.append)
    send = network.send
    index = 0
    while index < n:
        stop = index + 256
        if stop > n:
            stop = n
        while index < stop:
            send(Message("a", "b", "inbox", index, 32), want_done=False)
            index += 1
        env.run()
    assert len(delivered) == n
    return n


def network_messages_legacy(n: int) -> int:
    """The original BENCH_PR2 network workload, kept verbatim.

    One unbounded burst of default (``want_done=True``) sends: all *n*
    messages are simultaneously in flight, so the measurement is
    dominated by garbage-collector pressure from the n-deep backlog and
    by a done-Event per send that no production caller requests.
    """
    env = Environment()
    network = Network(env, latency=1.0, kernel_overhead=0.1)
    network.add_node("a")
    receiver = network.add_node("b")
    delivered = []
    receiver.register("inbox", delivered.append)
    for index in range(n):
        network.send(Message("a", "b", "inbox", index, 32))
    env.run()
    assert len(delivered) == n
    return n


def stream_calls(n: int) -> int:
    """End-to-end stream calls/sec for the E1 stream-vs-RPC scenario.

    A client streams *n* echo calls (batch size 16), flushes, and claims
    every promise — the full sender/network/receiver/dispatch/reply path.
    """
    # rto is effectively infinite: the client buffers every call up front,
    # so at large n the first ack legitimately takes longer than any
    # realistic retransmission budget; retries would only distort the
    # wall-clock measurement with extra (simulated-lost) traffic.
    # Legacy fixed-function transport: this workload is the BENCH_PR2
    # baseline, so its numbers must stay comparable across PRs (the
    # adaptive transport is measured separately in transport_bench.py).
    config = StreamConfig.legacy(
        batch_size=16,
        reply_batch_size=16,
        max_buffer_delay=2.0,
        reply_max_delay=2.0,
        rto=1e9,
    )
    system = ArgusSystem(
        latency=LATENCY, kernel_overhead=KERNEL_OVERHEAD, stream_config=config
    )
    server = system.create_guardian("server")

    def echo(ctx, x):
        yield ctx.compute(HANDLER_COST)
        return x

    server.create_handler("echo", ECHO, echo)

    def main(ctx):
        ref = ctx.lookup("server", "echo")
        promises = [ref.stream(index) for index in range(n)]
        ref.flush()
        total = 0
        for promise in promises:
            total += yield promise.claim()
        return total, ref.stream_sender.stats.snapshot()

    process = system.create_guardian("client").spawn(main)
    total, sender_stats = system.run(until=process)
    assert total == n * (n - 1) // 2
    assert sender_stats["calls_made"] == n
    assert sender_stats["breaks"] == 0
    return n


def codec_bytes(n: int) -> int:
    """Bytes/sec through the args codec: encode+decode *n* round trips.

    Uses a record-heavy signature (int, string, array[int], record) so
    every branch of the value encoder is on the measured path.  Units are
    wire bytes produced (and re-consumed).
    """
    codec = ArgsCodec.for_type(CODEC_TYPE)
    args = CODEC_ARGS
    encode = codec.encode
    decode = codec.decode
    total = 0
    decoded = None
    for _ in range(n):
        data = encode(args)
        decoded = decode(data)
        total += len(data)
    assert decoded == args
    return total


#: name -> (workload, full-run n, --quick n)
WORKLOADS = {
    "kernel_events": (kernel_events, 200_000, 20_000),
    "kernel_events_legacy": (kernel_events_legacy, 200_000, 20_000),
    "timer_wheel": (timer_wheel, 200_000, 20_000),
    "network_messages": (network_messages, 20_000, 2_000),
    "network_messages_legacy": (network_messages_legacy, 20_000, 2_000),
    "stream_calls": (stream_calls, 20_000, 2_000),
    "codec_bytes": (codec_bytes, 100_000, 10_000),
}
