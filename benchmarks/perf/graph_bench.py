"""Graph benchmark: the PR 10 sharded promise-graph engine vs per-edge RPC.

Like ``transport_bench.py``, this measures *protocol efficiency* in
deterministic simulated units, so its numbers are bit-reproducible
across machines and CI runs.  The workload is the one the engine was
built for: a Zipf-skewed key-value DAG whose chains hop across shards
and join in collectors — hot keys pile onto a few shards, cold keys
scatter, and every chain crosses at least one shard boundary in
expectation.

* ``skewed_kv`` — the same DAG driven two ways.  "Before" walks it with
  :meth:`GraphRuntime.run_rpc`: one blocking round trip per DAG edge,
  the client as the data plane.  "After" ships it with
  :meth:`GraphRuntime.submit`: routine trees travel to the shard their
  scheduling key hashes to, execute where the data lives, and cascade
  shard-to-shard without returning to the client.  Metric: routine
  executions per simulated second.

* ``epoch_batching`` — the same submission with per-shard epoch
  batching off ("before": every delivery is its own frame) vs on
  ("after": all deliveries bound for one shard travel as a single
  epoch frame).  Metric: wire messages for the whole run.

Both runs assert the DAG computed identical results, so the speedup is
never purchased with dropped or duplicated work.

Usage::

    PYTHONPATH=src python benchmarks/perf/graph_bench.py          # full
    PYTHONPATH=src python benchmarks/perf/graph_bench.py --quick  # CI
    PYTHONPATH=src python benchmarks/perf/graph_bench.py --check  # gate

``--check`` exits non-zero unless the engine meets the PR 10 acceptance
margins (>= 3x skewed-kv throughput over per-edge RPC, strictly fewer
wire messages with batching on).  ``--check-against FILE`` additionally
gates each scenario's ratio against a committed same-mode reference
(>20% regression fails); sim results are bit-reproducible, so the 20%
only absorbs intentional engine changes, not machine noise.
"""

from __future__ import annotations

import argparse
import bisect
import json
import os
import random
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(os.path.dirname(HERE))
DEFAULT_OUTPUT = os.path.join(REPO_ROOT, "BENCH_PR10.json")

if os.path.join(REPO_ROOT, "src") not in sys.path:
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.entities import ArgusSystem  # noqa: E402
from repro.graph import GraphBuilder, GraphRuntime, register_routine  # noqa: E402
from repro.types import INT, STRING  # noqa: E402

LATENCY = 1.0
KERNEL_OVERHEAD = 0.1
BASE_SEED = 11
N_SHARDS = 4
KEYSPACE = 64
ZIPF_S = 1.2
FAN_IN = 4
MAX_REGRESSION = 0.20

# ----------------------------------------------------------------------
# Routines (state-keyed per chain, so results are order-independent and
# the RPC and sharded runs can be compared value-for-value).
# ----------------------------------------------------------------------


def _gb_add(state, captures, inputs):
    key, delta = captures
    data = state.setdefault("data", {})
    data[key] = data.get(key, 0) + delta
    return (data[key],)


def _gb_scale(state, captures, inputs):
    (factor,) = captures
    (value,) = inputs
    return (value * factor,)


def _gb_sum(state, captures, inputs):
    return (sum(values[0] for values in inputs),)


register_routine(
    "gb.add", _gb_add, capture_types=(STRING, INT), output_types=(INT,), cost=0.05
)
register_routine(
    "gb.scale",
    _gb_scale,
    capture_types=(INT,),
    input_types=(INT,),
    output_types=(INT,),
    cost=0.05,
)
register_routine("gb.sum", _gb_sum, input_types=(INT,), output_types=(INT,), cost=0.05)


# ----------------------------------------------------------------------
# Workload
# ----------------------------------------------------------------------


def _zipf_draw(rng):
    """A Zipf(s=ZIPF_S) sampler over KEYSPACE ranks."""
    weights = [1.0 / (rank + 1) ** ZIPF_S for rank in range(KEYSPACE)]
    total = sum(weights)
    cdf, acc = [], 0.0
    for weight in weights:
        acc += weight / total
        cdf.append(acc)
    return lambda: bisect.bisect_left(cdf, rng.random())


def _build_dag(seed, chains):
    """*chains* two-hop chains on Zipf-skewed keys, joined FAN_IN-wise.

    Scheduling keys are skewed (placement piles onto hot shards); state
    keys are unique per chain, so every run computes the same values no
    matter which engine drives it or in what order routines fire.
    """
    draw = _zipf_draw(random.Random(seed))
    g = GraphBuilder()
    pending, nodes = [], 0
    for index in range(chains):
        src = g.source(
            "gb.add", captures=("c%d" % index, index + 1), sched_key=draw()
        )
        hop = src.then("gb.scale", captures=(3,), sched_key=draw())
        nodes += 2
        pending.append(hop)
        if len(pending) == FAN_IN:
            g.collect("gb.sum", inputs=pending, sched_key=draw()).emit(
                "join%d" % index
            )
            nodes += 1
            pending = []
    for index, hop in enumerate(pending):
        hop.emit("tail%d" % index)
    return g, nodes


def _expected_results(chains):
    """What every engine must compute for ``_build_dag(seed, chains)``."""
    results = {}
    pending = []
    for index in range(chains):
        pending.append((index + 1) * 3)
        if len(pending) == FAN_IN:
            results["join%d" % index] = (sum(pending),)
            pending = []
    for index, value in enumerate(pending):
        results["tail%d" % index] = (value,)
    return results


def _build_world(seed):
    system = ArgusSystem(
        seed=seed, latency=LATENCY, kernel_overhead=KERNEL_OVERHEAD
    )
    names = ["shard%d" % index for index in range(N_SHARDS)]
    runtime = GraphRuntime(system, names, origin="client")
    for name in names:
        runtime.install_shard(system.create_guardian(name))
    client = system.create_guardian("client")
    runtime.install_origin(client)
    return system, runtime, client


# ----------------------------------------------------------------------
# Scenarios
# ----------------------------------------------------------------------


def _run_submit(seed, chains, batching):
    system, runtime, client = _build_world(seed)
    graph, nodes = _build_dag(seed, chains)

    def main(ctx):
        start = ctx.now
        promises = runtime.submit(ctx, graph, batching=batching)
        results = {}
        for tag, promise in promises.items():
            results[tag] = yield promise.claim()
        return results, ctx.now - start

    process = client.spawn(main)
    results, elapsed = system.run(until=process)
    expected = _expected_results(chains)
    flat = {
        tag: value if isinstance(value, tuple) else (value,)
        for tag, value in results.items()
    }
    assert flat == expected, "sharded engine computed wrong results"
    assert runtime.pending_count() == 0
    return {
        "nodes": nodes,
        "sim_seconds": round(elapsed, 6),
        "calls_per_sim_sec": round(nodes / elapsed, 6),
        "wire_messages": system.stats()["messages_sent"],
    }


def _run_rpc(seed, chains):
    system, runtime, client = _build_world(seed)
    graph, nodes = _build_dag(seed, chains)

    def main(ctx):
        start = ctx.now
        results = yield from runtime.run_rpc(ctx, graph)
        return results, ctx.now - start

    process = client.spawn(main)
    results, elapsed = system.run(until=process)
    assert results == _expected_results(chains), "RPC baseline computed wrong results"
    return {
        "nodes": nodes,
        "sim_seconds": round(elapsed, 6),
        "calls_per_sim_sec": round(nodes / elapsed, 6),
        "wire_messages": system.stats()["messages_sent"],
    }


def skewed_kv(mode, chains=200):
    """Routine executions per simulated second: per-edge RPC vs sharded."""
    if mode == "before":
        return _run_rpc(BASE_SEED, chains)
    return _run_submit(BASE_SEED, chains, batching=True)


def epoch_batching(mode, chains=200):
    """Wire messages for one submission: batching off vs on."""
    return _run_submit(BASE_SEED, chains, batching=(mode == "after"))


#: scenario -> (runner, full kwargs, --quick kwargs, (metric, direction, gate))
SCENARIOS = {
    "skewed_kv": (
        skewed_kv,
        {"chains": 200},
        {"chains": 60},
        ("calls_per_sim_sec", "higher", 3.0),
    ),
    "epoch_batching": (
        epoch_batching,
        {"chains": 200},
        {"chains": 60},
        ("wire_messages", "lower", 1.0),
    ),
}


def _check_reference(report, path):
    """Gate each scenario's ratio against a committed same-mode report."""
    with open(path) as handle:
        reference = json.load(handle)
    if reference.get("mode") != report["mode"]:
        return [
            "reference %s is a %r run; refusing to compare against a %r run"
            % (path, reference.get("mode"), report["mode"])
        ]
    failures = []
    for name, entry in report["benchmarks"].items():
        ref_entry = reference.get("benchmarks", {}).get(name)
        if ref_entry is None:
            failures.append("%s: missing from reference %s" % (name, path))
            continue
        ratio, ref_ratio = entry["ratio"], ref_entry["ratio"]
        if entry["direction"] == "higher":
            floor = ref_ratio * (1.0 - MAX_REGRESSION)
            ok = ratio >= floor
        else:
            ceiling = ref_ratio * (1.0 + MAX_REGRESSION)
            ok = ratio <= ceiling
        print(
            "  %s: ratio %.3f vs reference %.3f -> %s"
            % (name, ratio, ref_ratio, "ok" if ok else "REGRESSED")
        )
        if not ok:
            failures.append(
                "%s: ratio %.3f regressed >%.0f%% from reference %.3f"
                % (name, ratio, MAX_REGRESSION * 100, ref_ratio)
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small n for CI smoke")
    parser.add_argument("--output", default=DEFAULT_OUTPUT)
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero unless the engine meets the PR 10 margins",
    )
    parser.add_argument(
        "--check-against",
        metavar="FILE",
        help="also gate ratios against a committed same-mode report",
    )
    args = parser.parse_args(argv)

    report = {"pr": 10, "mode": "quick" if args.quick else "full", "benchmarks": {}}
    failures = []
    for name, (runner, kwargs_full, kwargs_quick, gate) in SCENARIOS.items():
        kwargs = kwargs_quick if args.quick else kwargs_full
        metric, direction, threshold = gate
        print("measuring %s (%r) ..." % (name, kwargs), flush=True)
        before = runner("before", **kwargs)
        after = runner("after", **kwargs)
        ratio = after[metric] / before[metric]
        if direction == "higher":
            ok = ratio >= threshold
            verdict = "%.2fx %s (gate: >= %.1fx)" % (ratio, metric, threshold)
        else:
            ok = ratio < threshold
            verdict = "%.2fx %s (gate: < %.1fx)" % (ratio, metric, threshold)
        print("  before: %s = %s" % (metric, before[metric]), flush=True)
        print("  after:  %s = %s" % (metric, after[metric]), flush=True)
        print("  %s -> %s" % (verdict, "ok" if ok else "FAIL"), flush=True)
        report["benchmarks"][name] = {
            "metric": metric,
            "direction": direction,
            "gate": threshold,
            "before": before,
            "after": after,
            "ratio": round(ratio, 6),
            "ok": ok,
        }
        if not ok:
            failures.append(name)

    if args.check_against:
        print("comparing against %s ..." % args.check_against, flush=True)
        failures.extend(_check_reference(report, args.check_against))

    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("wrote %s" % args.output)

    if args.check and failures:
        print("graph gate FAILED: %s" % "; ".join(failures))
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
