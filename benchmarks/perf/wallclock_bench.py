"""Real-socket throughput of the wallclock backend (reported, not gated).

Measures the :mod:`repro.rt` backend end to end — client in this
process, echo guardian in a spawned worker process, frames over real
TCP on loopback:

* ``echo_rpc`` — N sequential blocking ``call`` round trips: the
  latency-bound workload (one frame each way per call);
* ``pipeline_stream`` — N ``stream`` calls issued ahead, then claimed:
  the throughput-bound workload (call streams amortize frames over
  batches, the paper's central claim, now on actual sockets).

Writes ``BENCH_PR9.json`` at the repository root.  Wall-clock rates on
shared CI runners are weather, not climate — this benchmark is
**informational**: nothing compares it against a baseline and nothing
fails on a slow run.

Usage::

    PYTHONPATH=src python benchmarks/perf/wallclock_bench.py          # full
    PYTHONPATH=src python benchmarks/perf/wallclock_bench.py --quick  # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

HERE = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(os.path.dirname(HERE))
DEFAULT_OUTPUT = os.path.join(REPO_ROOT, "BENCH_PR9.json")

if os.path.join(REPO_ROOT, "src") not in sys.path:
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
if REPO_ROOT not in sys.path:
    sys.path.insert(0, REPO_ROOT)

from repro.rt import RtCluster  # noqa: E402
from repro.types.signatures import INT, HandlerType  # noqa: E402

ECHO_T = HandlerType(args=[INT], returns=[INT])


def setup_echo(host) -> None:
    """Echo guardian for the worker process (pickled by reference)."""
    guardian = host.create_guardian("echo")

    def echo_impl(ctx, n):
        return n
        yield  # pragma: no cover - marks impl as a generator

    guardian.create_handler("echo", ECHO_T, echo_impl)


def _client(cluster):
    host = cluster.client_host()
    host.declare("echo", "echo", ECHO_T, node="node:echo")
    return host


def bench_echo_rpc(cluster, n: int) -> dict:
    host = _client(cluster)
    try:
        client = host.create_guardian("bench-rpc")

        def proc(ctx):
            echo = ctx.lookup("echo", "echo")
            for i in range(n):
                yield echo.call(i)
            return n

        start = time.perf_counter()
        process = client.spawn(proc)
        host.run(until=process, timeout=600.0)
        elapsed = time.perf_counter() - start
        stats = host.stats()
    finally:
        host.shutdown()
    return {
        "n": n,
        "seconds": elapsed,
        "rate_calls_per_s": n / elapsed,
        "latency_mean_ms": 1000.0 * elapsed / n,
        "network": stats,
    }


def bench_pipeline_stream(cluster, n: int) -> dict:
    host = _client(cluster)
    try:
        client = host.create_guardian("bench-pipe")

        def proc(ctx):
            echo = ctx.lookup("echo", "echo")
            promises = [echo.stream(i) for i in range(n)]
            echo.flush()
            total = 0
            for promise in promises:
                total += yield promise.claim()
            return total

        start = time.perf_counter()
        process = client.spawn(proc)
        total = host.run(until=process, timeout=600.0)
        elapsed = time.perf_counter() - start
        assert total == n * (n - 1) // 2, "echo values corrupted"
        stats = host.stats()
    finally:
        host.shutdown()
    return {
        "n": n,
        "seconds": elapsed,
        "rate_calls_per_s": n / elapsed,
        "network": stats,
    }


def run(quick: bool) -> dict:
    sizes = {"echo_rpc": 300, "pipeline_stream": 1000} if quick else {
        "echo_rpc": 2000,
        "pipeline_stream": 10000,
    }
    workloads = {}
    cluster = RtCluster({"node:echo": setup_echo})
    cluster.start()
    try:
        workloads["echo_rpc"] = bench_echo_rpc(cluster, sizes["echo_rpc"])
        workloads["pipeline_stream"] = bench_pipeline_stream(
            cluster, sizes["pipeline_stream"]
        )
        worker_stats = cluster.stop()
    except BaseException:
        cluster.kill()
        raise
    pipeline = workloads["pipeline_stream"]["rate_calls_per_s"]
    rpc = workloads["echo_rpc"]["rate_calls_per_s"]
    return {
        "pr": 9,
        "backend": "asyncio",
        "mode": "quick" if quick else "full",
        "gated": False,
        "workloads": workloads,
        "pipeline_speedup_over_rpc": pipeline / rpc,
        "worker_network": worker_stats,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI smoke sizes")
    parser.add_argument("--output", default=DEFAULT_OUTPUT)
    args = parser.parse_args(argv)
    report = run(args.quick)
    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=1, sort_keys=True)
        fh.write("\n")
    for name, data in sorted(report["workloads"].items()):
        print(
            "%-16s n=%-6d %8.3fs  %10.1f calls/s"
            % (name, data["n"], data["seconds"], data["rate_calls_per_s"])
        )
    print(
        "pipeline streams run %.1fx faster than sequential RPCs -> %s"
        % (report["pipeline_speedup_over_rpc"], args.output)
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
