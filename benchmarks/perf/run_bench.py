"""Wall-clock microbenchmark runner for the simulator hot path.

Measures the workloads in :mod:`benchmarks.perf.workloads` and writes a
machine-readable trajectory file (default: ``BENCH_PR7.json`` at the
repository root) containing the committed "before" baseline, the fresh
"after" numbers, and the speedup per workload.

Usage::

    PYTHONPATH=src python benchmarks/perf/run_bench.py            # full run
    PYTHONPATH=src python benchmarks/perf/run_bench.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/perf/run_bench.py --record-baseline

``--record-baseline`` rewrites ``benchmarks/perf/baseline_pr7.json`` with
the current measurements — run it on the *pre-optimization* checkout to
establish the "before" column.

``--check-against BENCH_PR7.json`` compares the fresh run's rates to the
committed "after" rates and exits non-zero if any workload regressed by
more than ``--max-regression`` (default 1.2, i.e. >20% slower) — the CI
perf-smoke gate.  Quick-mode CI runners are noisier than the machine the
committed numbers came from, so the gate compares like with like: each
trajectory file records which mode it measured.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

HERE = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(os.path.dirname(HERE))
BASELINE_PATH = os.path.join(HERE, "baseline_pr7.json")
DEFAULT_OUTPUT = os.path.join(REPO_ROOT, "BENCH_PR7.json")

if os.path.join(REPO_ROOT, "src") not in sys.path:
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
if REPO_ROOT not in sys.path:
    sys.path.insert(0, REPO_ROOT)

from benchmarks.perf.workloads import WORKLOADS  # noqa: E402


def measure(workload, n: int, repeats: int) -> dict:
    """Best-of-*repeats* wall-clock for one workload at size *n*."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        units = workload(n)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return {"n": n, "seconds": best, "rate": units / best}


def run_all(quick: bool, repeats: int) -> dict:
    results = {}
    for name, (workload, n_full, n_quick) in WORKLOADS.items():
        n = n_quick if quick else n_full
        print("measuring %s (n=%d) ..." % (name, n), flush=True)
        results[name] = measure(workload, n, repeats)
        print(
            "  %s: %.4fs  (%.0f units/sec)"
            % (name, results[name]["seconds"], results[name]["rate"]),
            flush=True,
        )
    return results


def load_json(path: str) -> dict:
    with open(path) as handle:
        return json.load(handle)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small n for CI smoke")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--output", default=DEFAULT_OUTPUT)
    parser.add_argument(
        "--record-baseline",
        action="store_true",
        help="rewrite the committed 'before' baseline with this run",
    )
    parser.add_argument(
        "--check-against",
        metavar="JSON",
        help="compare rates to a committed trajectory file's 'after' numbers",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=1.2,
        help="fail if any workload is more than this factor slower than the "
        "committed rates (default 1.2 = >20%% regression)",
    )
    args = parser.parse_args(argv)

    results = run_all(args.quick, args.repeats)

    if args.record_baseline:
        payload = {"quick" if args.quick else "full": results}
        if os.path.exists(BASELINE_PATH):
            merged = load_json(BASELINE_PATH)
            merged.update(payload)
            payload = merged
        with open(BASELINE_PATH, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("baseline recorded to %s" % BASELINE_PATH)
        return 0

    mode = "quick" if args.quick else "full"
    baseline = {}
    if os.path.exists(BASELINE_PATH):
        baseline = load_json(BASELINE_PATH).get(mode, {})

    report = {"pr": 7, "mode": mode, "benchmarks": {}}
    for name, after in results.items():
        entry = {"after": after}
        before = baseline.get(name)
        if before is not None:
            entry["before"] = before
            entry["speedup"] = after["rate"] / before["rate"]
        report["benchmarks"][name] = entry
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("wrote %s" % args.output)
    for name, entry in report["benchmarks"].items():
        if "speedup" in entry:
            print("  %s: %.2fx vs baseline" % (name, entry["speedup"]))

    if args.check_against:
        committed_report = load_json(args.check_against)
        committed_mode = committed_report.get("mode")
        if committed_mode != mode:
            print(
                "perf-smoke gate misconfigured: committed file is %r mode but "
                "this run is %r mode (rates are not comparable across modes)"
                % (committed_mode, mode)
            )
            return 1
        committed = committed_report["benchmarks"]
        failed = False
        for name, after in results.items():
            reference = committed.get(name, {}).get("after")
            if reference is None:
                continue
            ratio = reference["rate"] / after["rate"]
            status = "FAIL" if ratio > args.max_regression else "ok"
            print(
                "  gate %s: %.0f/sec vs committed %.0f/sec (%.2fx slower) %s"
                % (name, after["rate"], reference["rate"], ratio, status)
            )
            if ratio > args.max_regression:
                failed = True
        if failed:
            print("perf-smoke gate FAILED (> %.1fx regression)" % args.max_regression)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
