"""Transport benchmark: legacy go-back-N vs the PR 5 adaptive transport.

Unlike ``run_bench.py`` (wall-clock hot-path rates), this benchmark
measures *protocol efficiency* in deterministic simulated units, so its
numbers are bit-reproducible across machines and CI runs.  The link
model is a 1988-grade long-fat-ish pipe: 5 s propagation delay, finite
bandwidth (bytes cost wire time, occupying the sender), and a small
per-message kernel cost — the regime the paper's transport design
actually targets.  With free bandwidth, go-back-N's giant resends cost
nothing and the comparison is meaningless.

* ``lossy_link`` — a client pipelines echo calls over a link that drops
  2% of messages, repeated over several RNG seeds.  Metric: aggregate
  throughput in calls per simulated second.  The legacy transport pays
  a full fixed-RTO stall per drop and then go-back-N-retransmits every
  unacked call (tens of kilobytes of redundant wire time); the adaptive
  transport recovers via duplicate-ack fast retransmit and reply-gap
  probes at ~RTT, skips calls the receiver already holds (SACK), and
  keeps its RTO tracking the path.

* ``bulk_pipeline`` — a client pushes a large burst of calls over a
  clean link.  Metric: wire messages for the whole run.  The legacy
  transport is pinned at ``batch_size=8`` packets; AIMD batching grows
  the effective batch toward ``max_batch_size`` on clean acks, so the
  same burst crosses the wire in far fewer packets.

"Before" is the legacy fixed-function configuration
(:meth:`StreamConfig.legacy`), "after" the adaptive one — both run
against the *current* tree, so the comparison isolates the transport
strategy itself.

Usage::

    PYTHONPATH=src python benchmarks/perf/transport_bench.py          # full
    PYTHONPATH=src python benchmarks/perf/transport_bench.py --quick  # CI
    PYTHONPATH=src python benchmarks/perf/transport_bench.py --check  # gate

``--check`` exits non-zero unless the adaptive transport beats legacy by
the PR 5 acceptance margins (>= 1.5x lossy-link throughput, strictly
fewer bulk-pipeline wire messages).
"""

from __future__ import annotations

import argparse
import json
import os
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(os.path.dirname(HERE))
DEFAULT_OUTPUT = os.path.join(REPO_ROOT, "BENCH_PR5.json")

if os.path.join(REPO_ROOT, "src") not in sys.path:
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.entities import ArgusSystem  # noqa: E402
from repro.net.faults import LinkFaultInjector, LinkFaultProfile  # noqa: E402
from repro.streams import StreamConfig  # noqa: E402
from repro.types import INT, HandlerType  # noqa: E402

ECHO = HandlerType(args=[INT], returns=[INT])

LATENCY = 5.0
BANDWIDTH = 1_000.0  # bytes per simulated second: bytes cost wire time
KERNEL_OVERHEAD = 0.1
DROP_RATE = 0.02
BASE_SEED = 11

#: Shared protocol knobs, so before/after differ only in transport
#: strategy (go-back-N/fixed-RTO/static batch vs SACK/adaptive-RTO/AIMD).
COMMON = dict(
    batch_size=8,
    reply_batch_size=8,
    max_buffer_delay=2.0,
    reply_max_delay=2.0,
    rto=20.0,
    ack_delay=2.0,
    reply_ack_delay=6.0,
    max_retries=20,
)

LEGACY = StreamConfig.legacy(**COMMON)
ADAPTIVE = StreamConfig(
    max_batch_size=64,
    min_rto=2.0,
    max_rto=60.0,
    max_inflight_calls=256,
    **COMMON
)


def _build_world(config, seed, profile=None):
    system = ArgusSystem(
        seed=seed,
        latency=LATENCY,
        bandwidth=BANDWIDTH,
        kernel_overhead=KERNEL_OVERHEAD,
        stream_config=config,
    )
    server = system.create_guardian("server")
    server.state["echo_calls"] = 0

    def echo(ctx, x):
        ctx.guardian.state["echo_calls"] += 1
        return x
        yield  # handler protocol: body is a generator

    server.create_handler("echo", ECHO, echo)
    client = system.create_guardian("client")
    if profile is not None:
        system.network.install_link_faults(
            LinkFaultInjector(system.rng.stream("chaos.link"), default=profile)
        )
    return system, server, client


def _drive(system, server, client, n, chunk):
    """Pipeline *n* echo calls in *chunk*-sized flushed waves, claim all."""

    def main(ctx):
        echo = ctx.lookup("server", "echo")
        promises = []
        for base in range(0, n, chunk):
            promises.extend(
                echo.stream(index) for index in range(base, min(base + chunk, n))
            )
            echo.flush()
            yield ctx.sleep(1.0)
        total = 0
        for promise in promises:
            total += yield promise.claim()
        return total, echo.stream_sender.stats.snapshot()

    process = client.spawn(main)
    total, sender_stats = system.run(until=process)
    assert total == n * (n - 1) // 2, "wrong echo sum: transport corrupted data"
    assert server.state["echo_calls"] == n, "echo did not run exactly once per call"
    assert sender_stats["breaks"] == 0, "stream broke mid-benchmark"
    return sender_stats


def lossy_link(config, n=400, seeds=3):
    """Aggregate calls per simulated second over a 2%-drop link.

    Loss placement dominates single-run times (one unlucky tail drop is
    a whole recovery cycle), so the metric aggregates *seeds* runs of
    *n* calls each on consecutive RNG seeds.
    """
    profile = LinkFaultProfile(drop_rate=DROP_RATE)
    total_time = 0.0
    per_seed = []
    totals = {"retransmissions": 0, "fast_retransmits": 0,
              "reply_gap_probes": 0, "retransmitted_calls_avoided": 0}
    for seed in range(BASE_SEED, BASE_SEED + seeds):
        system, server, client = _build_world(config, seed, profile=profile)
        stats = _drive(system, server, client, n, chunk=32)
        total_time += system.now
        per_seed.append(round(system.now, 6))
        for key in totals:
            totals[key] += stats[key]
    result = {
        "n": n,
        "seeds": seeds,
        "drop_rate": DROP_RATE,
        "sim_seconds_per_seed": per_seed,
        "sim_seconds_total": round(total_time, 6),
        "calls_per_sim_sec": round(n * seeds / total_time, 6),
    }
    result.update(totals)
    return result


def bulk_pipeline(config, n=800):
    """Wire messages to push *n* calls over a clean link."""
    system, server, client = _build_world(config, BASE_SEED)
    stats = _drive(system, server, client, n, chunk=256)
    return {
        "n": n,
        "sim_seconds": round(system.now, 6),
        "wire_messages": system.stats()["messages_sent"],
        "packets_sent": stats["packets_sent"],
        "window_stalls": stats["window_stalls"],
        "max_inflight": stats["max_inflight"],
    }


#: scenario -> (runner, full kwargs, --quick kwargs, (metric, direction, gate))
SCENARIOS = {
    "lossy_link": (
        lossy_link,
        {"n": 400, "seeds": 8},
        {"n": 400, "seeds": 3},
        ("calls_per_sim_sec", "higher", 1.5),
    ),
    "bulk_pipeline": (
        bulk_pipeline,
        {"n": 2_000},
        {"n": 800},
        ("wire_messages", "lower", 1.0),
    ),
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small n for CI smoke")
    parser.add_argument("--output", default=DEFAULT_OUTPUT)
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero unless adaptive meets the PR 5 margins",
    )
    args = parser.parse_args(argv)

    report = {"pr": 5, "mode": "quick" if args.quick else "full", "benchmarks": {}}
    failures = []
    for name, (runner, kwargs_full, kwargs_quick, gate) in SCENARIOS.items():
        kwargs = kwargs_quick if args.quick else kwargs_full
        metric, direction, threshold = gate
        print("measuring %s (%r) ..." % (name, kwargs), flush=True)
        before = runner(LEGACY, **kwargs)
        after = runner(ADAPTIVE, **kwargs)
        ratio = after[metric] / before[metric]
        if direction == "higher":
            ok = ratio >= threshold
            verdict = "%.2fx %s (gate: >= %.1fx)" % (ratio, metric, threshold)
        else:
            ok = ratio < threshold
            verdict = "%.2fx %s (gate: < %.1fx)" % (ratio, metric, threshold)
        print(
            "  before (legacy):   %s = %s" % (metric, before[metric]), flush=True
        )
        print(
            "  after  (adaptive): %s = %s" % (metric, after[metric]), flush=True
        )
        print(
            "  %s -> %s" % (verdict, "ok" if ok else "FAIL"), flush=True
        )
        report["benchmarks"][name] = {
            "metric": metric,
            "direction": direction,
            "gate": threshold,
            "before": before,
            "after": after,
            "ratio": round(ratio, 6),
            "ok": ok,
        }
        if not ok:
            failures.append(name)

    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("wrote %s" % args.output)

    if args.check and failures:
        print("transport gate FAILED: %s" % ", ".join(failures))
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
