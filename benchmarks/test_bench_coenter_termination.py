"""E12 — coenter termination vs the fork hang, and the wounding ablation.

Paper claims (§4.1-§4.2): with naive forks, "if the recording process
terminates early because of a communication problem ... the printing
process may hang forever waiting to dequeue the next promise from the
queue"; the coenter terminates the group promptly.  Wounding: termination
is delayed inside critical sections so "damaged data" never happens.

Reproduced series: time until the whole composition has terminated after a
mid-run failure, naive forks (bounded here by a watchdog; conceptually
infinite) vs coenter; plus the DESIGN.md §5 ablation of critical-section
protection (count of observed mid-operation interruptions with and without
it).
"""

from repro.concurrency import PromiseQueue, critical_section
from repro.core import Signal
from repro.entities import ArgusSystem
from repro.sim import Interrupt

from .conftest import report

WATCHDOG = 10_000.0
FAIL_AT = 3.0


def run_naive_forks():
    """Figure 4-1 without cleanup: the consumer hangs forever."""
    system = ArgusSystem()
    client = system.create_guardian("client")
    queue = PromiseQueue(system.env)

    def producer(ctx):
        yield ctx.sleep(FAIL_AT)
        raise Signal("cannot_record")

    def consumer(ctx):
        while True:
            promise = yield queue.deq()  # hangs: nothing will ever arrive
            yield promise.claim()

    def main(ctx):
        p1 = ctx.fork(producer)
        p2 = ctx.fork(consumer)
        try:
            yield p1.claim()
        except Signal:
            pass
        # The paper's point: p2 never resolves.  Watchdog-bound the wait.
        done = p2.wait()
        timer = ctx.env.timeout(WATCHDOG)
        yield ctx.env.any_of([done, timer])
        return ctx.now if done.processed else WATCHDOG

    process = client.spawn(main)
    return system.run(until=process)


def run_coenter():
    """Figure 4-2: the failure terminates the sibling arm promptly."""
    system = ArgusSystem()
    client = system.create_guardian("client")

    def main(ctx):
        co = ctx.coenter()
        queue = PromiseQueue(ctx.env)
        co.guard_queue(queue.raw)

        def producer(actx):
            yield actx.sleep(FAIL_AT)
            raise Signal("cannot_record")

        def consumer(actx):
            while True:
                promise = yield queue.deq()
                yield promise.claim()

        co.arm(producer)
        co.arm(consumer)
        try:
            yield co.run()
        except Signal:
            pass
        return ctx.now

    process = client.spawn(main)
    return system.run(until=process)


def run_wounding_ablation(protected):
    """Count mid-critical-section interruptions of a two-step queue
    operation, with and without critical-section protection."""
    system = ArgusSystem()
    client = system.create_guardian("client")
    damage = {"count": 0}
    operations = {"count": 0}

    def main(ctx):
        co = ctx.coenter()

        def worker(actx):
            shared = []
            try:
                while True:
                    if protected:
                        with critical_section(actx.env):
                            shared.append("half")
                            yield actx.sleep(0.3)  # two-step operation
                            shared.pop()
                            operations["count"] += 1
                    else:
                        shared.append("half")
                        yield actx.sleep(0.3)
                        shared.pop()
                        operations["count"] += 1
            except Interrupt:
                if shared:
                    damage["count"] += 1  # interrupted mid-operation
                raise

        def failing(actx):
            yield actx.sleep(FAIL_AT + 0.15)  # lands mid-operation
            raise Signal("die")

        co.arm(worker)
        co.arm(failing)
        try:
            yield co.run()
        except Signal:
            pass

    process = client.spawn(main)
    system.run(until=process)
    return damage["count"], operations["count"]


def test_e12_termination_and_wounding(benchmark):
    naive = run_naive_forks()
    coenter = run_coenter()
    damage_unprotected, _ops_u = run_wounding_ablation(protected=False)
    damage_protected, ops_p = run_wounding_ablation(protected=True)
    rows = [
        ("naive forks (watchdog-bounded)", naive),
        ("coenter", coenter),
        ("damaged-data events, unprotected", damage_unprotected),
        ("damaged-data events, critical sections", damage_protected),
        ("completed operations under protection", ops_p),
    ]
    report("E12", "coenter group termination and wounding", ["scenario", "value"], rows)

    # The fork version hangs (hits the watchdog); the coenter terminates
    # within moments of the failure.
    assert naive >= WATCHDOG
    assert coenter < FAIL_AT + 2.0
    # Without critical sections the worker is caught mid-operation; with
    # them, never.
    assert damage_unprotected == 1
    assert damage_protected == 0
    assert ops_p >= 1

    benchmark(run_coenter)
