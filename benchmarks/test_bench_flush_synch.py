"""E10 — flush speeds delivery; synch additionally waits.

Paper claims (§2): "Even without the flush, the system will send these
messages eventually; the flush merely speeds this up."  "Synching not only
does a flush, but it causes the caller to wait until all earlier calls on
the stream have completed."

Reproduced series: time to the first claimable result with and without an
explicit flush, sweeping the buffer residency deadline; and the extra wait
synch adds over flush as handler cost grows.
"""

from repro.entities import ArgusSystem
from repro.streams import StreamConfig
from repro.types import INT, HandlerType

from .conftest import report

ECHO = HandlerType(args=[INT], returns=[INT])


def build_system(max_buffer_delay, handler_cost):
    config = StreamConfig(
        batch_size=100,
        reply_batch_size=100,
        max_buffer_delay=max_buffer_delay,
        reply_max_delay=max_buffer_delay,
    )
    system = ArgusSystem(latency=1.0, kernel_overhead=0.1, stream_config=config)
    server = system.create_guardian("server")

    def echo(ctx, x):
        yield ctx.compute(handler_cost)
        return x

    server.create_handler("echo", ECHO, echo)
    return system


def time_to_first_result(max_buffer_delay, flush):
    system = build_system(max_buffer_delay, handler_cost=0.05)

    def main(ctx):
        echo = ctx.lookup("server", "echo")
        promise = echo.stream(1)
        if flush:
            echo.flush()
        yield promise.claim()
        return ctx.now

    process = system.create_guardian("client").spawn(main)
    return system.run(until=process)


def flush_vs_synch_return_time(handler_cost):
    """flush returns immediately; synch waits for completion."""
    results = {}
    for op in ("flush", "synch"):
        system = build_system(max_buffer_delay=2.0, handler_cost=handler_cost)

        def main(ctx, op=op):
            echo = ctx.lookup("server", "echo")
            for index in range(4):
                echo.stream_statement(index)
            if op == "flush":
                echo.flush()
            else:
                yield echo.synch()
            after_op = ctx.now
            yield ctx.sleep(0)
            return after_op

        process = system.create_guardian("client").spawn(main)
        results[op] = system.run(until=process)
    return results["flush"], results["synch"]


def test_e10_flush(benchmark):
    rows = []
    for max_buffer_delay in (2.0, 8.0, 32.0):
        without_flush = time_to_first_result(max_buffer_delay, flush=False)
        with_flush = time_to_first_result(max_buffer_delay, flush=True)
        rows.append((max_buffer_delay, without_flush, with_flush, without_flush - with_flush))
    report(
        "E10a",
        "flush: time to first result vs buffer residency deadline",
        ["buffer_deadline", "no_flush", "with_flush", "saved"],
        rows,
    )
    for deadline, without_flush, with_flush, _saved in rows:
        assert with_flush < without_flush  # flush speeds things up
        assert without_flush >= deadline  # buffered until the deadline
    # With flush, the time is independent of the deadline.
    flush_times = {row[2] for row in rows}
    assert max(flush_times) - min(flush_times) < 1e-9

    benchmark(time_to_first_result, 8.0, True)


def test_e10_synch_waits(benchmark):
    rows = []
    for handler_cost in (0.1, 2.0, 8.0):
        flush_return, synch_return = flush_vs_synch_return_time(handler_cost)
        rows.append((handler_cost, flush_return, synch_return))
    report(
        "E10b",
        "flush returns immediately; synch waits for completion",
        ["handler_cost", "flush_returns_at", "synch_returns_at"],
        rows,
    )
    for handler_cost, flush_return, synch_return in rows:
        assert flush_return == 0.0  # flush never blocks the caller
        assert synch_return >= 4 * handler_cost  # synch waited for all 4

    benchmark(flush_vs_synch_return_time, 1.0)
