"""E6 — process-per-stream vs process-per-item composition.

Paper claim (§4.3): "the extra concurrency may be useful since it permits
us to run the filters in parallel.  Clearly, this is of interest only if
the filters are lengthy ...  The problem is that there are many more
processes to manage than in the process-per-stream case.  This can impose
a substantial burden on the system, and even slow down the program. ...
the process-per-stream structure avoids the whole problem and therefore is
better, at least on a sequential machine."

Reproduced series: completion time of both structures sweeping (a) the
filter cost (long filters reward per-item parallelism) and (b) the
process-spawn overhead (which punishes per-item).  The crossover the paper
predicts must appear.
"""

from repro.compose import Filter, Pipeline, Stage, run_per_item, run_per_stream
from repro.entities import ArgusSystem
from repro.types import INT, HandlerType

from .conftest import report

STEP = HandlerType(args=[INT], returns=[INT])
N_ITEMS = 24


def build_system(spawn_overhead):
    system = ArgusSystem(
        latency=2.0, kernel_overhead=0.1, process_spawn_overhead=spawn_overhead
    )
    for name in ("alpha", "beta"):
        guardian = system.create_guardian(name)

        def impl(ctx, x):
            yield ctx.compute(0.2)
            return x + 1

        guardian.create_handler("step", STEP, impl)
    return system


def run_structure(runner, filter_cost, spawn_overhead):
    system = build_system(spawn_overhead)
    pipeline = Pipeline(
        [
            Stage("alpha", "step", filter=Filter(lambda v, i: (i,), cost=filter_cost)),
            Stage("beta", "step", filter=Filter(lambda v, i: (v,), cost=filter_cost)),
        ]
    )

    def main(ctx):
        results = yield from runner(ctx, pipeline, list(range(N_ITEMS)))
        return results

    process = system.create_guardian("client").spawn(main)
    results = system.run(until=process)
    assert results == [x + 2 for x in range(N_ITEMS)]
    return system.now


def test_e6_per_stream_vs_per_item(benchmark):
    rows = []
    for filter_cost in (0.0, 0.5, 2.0, 8.0):
        for spawn_overhead in (0.0, 0.5):
            per_stream = run_structure(run_per_stream, filter_cost, spawn_overhead)
            per_item = run_structure(run_per_item, filter_cost, spawn_overhead)
            rows.append(
                (
                    filter_cost,
                    spawn_overhead,
                    per_stream,
                    per_item,
                    "per_item" if per_item < per_stream else "per_stream",
                )
            )
    report(
        "E6",
        "process-per-stream vs process-per-item (n=%d)" % N_ITEMS,
        ["filter_cost", "spawn_overhead", "per_stream", "per_item", "winner"],
        rows,
    )
    by_key = {(row[0], row[1]): row for row in rows}
    # Cheap filters: per-stream wins (or ties) — "better, at least on a
    # sequential machine" — especially once process management costs bite.
    assert by_key[(0.0, 0.5)][4] == "per_stream"
    # Lengthy filters with free processes: per-item parallelism wins.
    assert by_key[(8.0, 0.0)][4] == "per_item"
    # The spawn overhead strictly hurts per-item more than per-stream.
    hurt_item = by_key[(2.0, 0.5)][3] - by_key[(2.0, 0.0)][3]
    hurt_stream = by_key[(2.0, 0.5)][2] - by_key[(2.0, 0.0)][2]
    assert hurt_item > hurt_stream

    benchmark(run_structure, run_per_stream, 0.5, 0.0)
