"""Open-loop load harness: million-agent traffic against simulated worlds.

See :mod:`benchmarks.load.arrivals` for the traffic models (Poisson and
heavy-tailed Pareto arrivals, constant-memory Zipf popularity),
:mod:`benchmarks.load.harness` for the workload topologies and the
open-loop driver, and :mod:`benchmarks.load.run_load` for the CLI that
runs the stepped-rate SLO search and writes ``BENCH_PR8.json``.
"""
