"""Stepped-rate load search + SLO report: writes ``BENCH_PR8.json``.

Run the open-loop harness over every workload's rate ladder, judge the
results against the SLO spec, and write the load report that
``python -m repro.obs report`` / ``top`` render::

    PYTHONPATH=src:. python -m benchmarks.load.run_load --quick -o BENCH_PR8_quick.json
    PYTHONPATH=src:. python -m repro.obs report BENCH_PR8_quick.json
    PYTHONPATH=src:. python -m repro.obs top BENCH_PR8_quick.json -w echo

CI gate (the ``slo-smoke`` job)::

    python -m benchmarks.load.run_load --quick --check-against BENCH_PR8_quick.json

``--check-against`` reruns the search and fails (exit 1) when any SLO is
breached, when max sustainable throughput regresses more than 20% below
the committed report, or when p99 latency at the reference rate regresses
more than 20% above it.  Quick and full reports are never comparable —
the gate refuses mode mismatches rather than misjudging.

Each workload's sustained criterion uses its SLO latency ceilings as the
in-run guard (see ``LoadConfig.latency_guard``), so
``max_sustainable_throughput`` means "highest offered rate still inside
SLO", found before the flow-control window collapses outright.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional

from benchmarks.load.harness import LOAD_WORKLOADS, LoadConfig, stepped_search
from repro.obs.slo import SloSpec, evaluate_slo, render_report

__all__ = ["PROFILES", "build_report", "check_against", "main"]

#: Per-mode scale and rate ladders.  The full profile runs the paper's
#: 10^6-agent population; churn_rate is scaled down so the *absolute*
#: churn event rate (agents/sec) matches the quick profile instead of
#: drowning the calendar.  Ladders stop one step past the last rate the
#: committed snapshots sustain, so the collapse point shows in the report
#: without paying for unreachable rungs.
PROFILES: Dict[str, Dict[str, Any]] = {
    "quick": {
        "n_agents": 100_000,
        "duration": 4.0,
        "churn_rate": 0.01,
        "ladders": {
            "echo": [150.0, 300.0, 600.0, 1200.0],
            "pipeline": [100.0, 200.0, 400.0],
            "kv": [150.0, 300.0, 600.0, 1200.0],
        },
    },
    "full": {
        "n_agents": 1_000_000,
        "duration": 4.0,
        "churn_rate": 0.001,
        "ladders": {
            "echo": [400.0, 800.0, 1600.0, 3200.0, 6400.0],
            "pipeline": [200.0, 400.0, 800.0],
            "kv": [400.0, 800.0, 1600.0, 3200.0, 6400.0],
        },
    },
}


def build_report(
    mode: str,
    seed: int,
    workloads: List[str],
    spec: SloSpec,
    echo_progress: bool = True,
) -> Dict[str, Any]:
    """Run every workload's stepped-rate search; returns the full report."""
    profile = PROFILES[mode]
    report: Dict[str, Any] = {
        "pr": 8,
        "mode": mode,
        "agents": profile["n_agents"],
        "seed": seed,
        "workloads": {},
    }
    for name in workloads:
        guard = spec.spec.get(name, {}).get("latency") or None
        config = LoadConfig(
            workload=name,
            n_agents=profile["n_agents"],
            duration=profile["duration"],
            churn_rate=profile["churn_rate"],
            seed=seed,
            latency_guard=guard,
        )
        entry, steps = stepped_search(config, profile["ladders"][name])
        report["workloads"][name] = entry
        if echo_progress:
            for step in steps:
                print(
                    "%-8s %8.1f -> %8.1f ops/s  p99=%.4f  %s"
                    % (
                        name,
                        step["offered_rate"],
                        step["achieved_rate"],
                        step["p99"],
                        "sustained" if step["sustained"] else "COLLAPSED",
                    ),
                    file=sys.stderr,
                )
    verdict = evaluate_slo(spec, report["workloads"])
    for name, entry_verdict in verdict["workloads"].items():
        report["workloads"][name]["slo"] = entry_verdict
    report["slo"] = verdict
    report["slo_spec"] = spec.to_dict()
    return report


def check_against(
    report: Dict[str, Any], committed: Dict[str, Any]
) -> List[str]:
    """Regression problems of *report* vs the *committed* snapshot."""
    problems: List[str] = []
    if committed.get("mode") != report.get("mode"):
        return [
            "mode mismatch: this run is %r but the committed report is %r "
            "— quick and full numbers are not comparable"
            % (report.get("mode"), committed.get("mode"))
        ]
    slo = report.get("slo", {})
    if not slo.get("ok", False):
        for name, verdict in sorted(slo.get("workloads", {}).items()):
            for check in verdict["checks"]:
                if not check["ok"]:
                    problems.append(
                        "%s: SLO breach: %s limit=%r actual=%r"
                        % (name, check["check"], check["limit"], check["actual"])
                    )
    for name, old in sorted(committed.get("workloads", {}).items()):
        new = report.get("workloads", {}).get(name)
        if new is None:
            problems.append("workload %r missing from this run" % (name,))
            continue
        old_tp = old.get("max_sustainable_throughput")
        new_tp = new.get("max_sustainable_throughput")
        if old_tp:
            if not new_tp or new_tp < 0.8 * old_tp:
                problems.append(
                    "%s: max sustainable throughput regressed >20%%: "
                    "%r -> %r ops/s" % (name, old_tp, new_tp)
                )
        old_p99 = (old.get("latency") or {}).get("p99")
        new_p99 = (new.get("latency") or {}).get("p99")
        if old_p99 is not None and new_p99 is not None:
            # 20% relative plus a small absolute epsilon so microsecond
            # jitter on a near-zero baseline cannot trip the gate.
            if new_p99 > old_p99 * 1.2 + 0.005:
                problems.append(
                    "%s: p99 latency regressed >20%%: %.4f -> %.4f"
                    % (name, old_p99, new_p99)
                )
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m benchmarks.load.run_load",
        description="Open-loop load search with SLO verdicts.",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="quick profile (10^5 agents, short ladders; the CI gate)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--workloads",
        default=",".join(sorted(LOAD_WORKLOADS)),
        help="comma-separated workload names (default: all)",
    )
    parser.add_argument(
        "-o",
        "--output",
        default=None,
        help="report path (default BENCH_PR8.json, _quick with --quick)",
    )
    parser.add_argument(
        "--slo", default=None, help="SLO spec JSON (default: built-in spec)"
    )
    parser.add_argument(
        "--check-against",
        default=None,
        metavar="REPORT",
        help="compare against a committed report; exit 1 on regression "
        "or SLO breach (the fresh report is still written, so CI can "
        "upload it for inspection)",
    )
    args = parser.parse_args(argv)

    mode = "quick" if args.quick else "full"
    workloads = [name for name in args.workloads.split(",") if name]
    for name in workloads:
        if name not in LOAD_WORKLOADS:
            parser.error(
                "unknown workload %r (known: %s)"
                % (name, ", ".join(sorted(LOAD_WORKLOADS)))
            )
    spec = SloSpec.from_file(args.slo) if args.slo else SloSpec()
    report = build_report(mode, args.seed, workloads, spec)
    print(render_report(report))

    output = args.output or (
        "BENCH_PR8_quick.json" if args.quick else "BENCH_PR8.json"
    )
    with open(output, "w") as handle:
        json.dump(report, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print("\nwrote %s" % output)

    if args.check_against:
        with open(args.check_against) as handle:
            committed = json.load(handle)
        problems = check_against(report, committed)
        if problems:
            print("\nload gate FAILED:")
            for problem in problems:
                print("  - %s" % problem)
            return 1
        print("load gate ok (vs %s)" % args.check_against)
        return 0
    return 0 if report["slo"]["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
