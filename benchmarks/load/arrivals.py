"""Traffic models for the open-loop load harness.

Everything here is **constant-memory and deterministic**: samplers draw
from a caller-supplied ``random.Random`` (a named
:mod:`repro.sim.rng` stream), so a load run is bit-reproducible from its
seed and no model keeps per-agent or per-key tables.

Arrival processes
-----------------
Open-loop means the generator *never waits for the system*: inter-arrival
gaps are drawn from the traffic model regardless of how many requests are
still in flight.  Two gap distributions:

* :class:`PoissonArrivals` — exponential gaps at the offered rate (the
  memoryless baseline every queueing result is stated against);
* :class:`ParetoArrivals` — heavy-tailed gaps with the same mean: long
  quiet stretches punctuated by dense bursts, the shape real user traffic
  takes.  ``alpha`` close to 1 makes the tail heavier (must be > 1 so the
  mean exists — the offered rate stays meaningful).

Popularity
----------
:class:`ZipfSampler` ranks a finite population (agents, keys) by
popularity and samples ranks Zipf-distributed with skew ``s``, using the
inverse of the continuous generalized-harmonic CDF — O(1) memory and
O(1) time per sample, no rank table, which is what lets key popularity
and agent activity stay skewed across 10^6-entity populations.
"""

from __future__ import annotations

import math
import random

__all__ = ["PoissonArrivals", "ParetoArrivals", "ZipfSampler", "make_arrivals"]


class PoissonArrivals:
    """Exponential inter-arrival gaps at *rate* arrivals per sim-second."""

    __slots__ = ("rate",)

    name = "poisson"

    def __init__(self, rate: float) -> None:
        if rate <= 0.0:
            raise ValueError("rate must be positive, got %r" % (rate,))
        self.rate = rate

    def gap(self, rng: random.Random) -> float:
        return rng.expovariate(self.rate)


class ParetoArrivals:
    """Heavy-tailed (Pareto) inter-arrival gaps with mean ``1 / rate``.

    ``rng.paretovariate(alpha)`` yields values >= 1 with mean
    ``alpha / (alpha - 1)``; scaling by ``(alpha - 1) / (alpha * rate)``
    pins the mean gap to ``1 / rate`` so the offered rate matches the
    Poisson process while the burst structure is far rougher.
    """

    __slots__ = ("rate", "alpha", "_scale")

    name = "pareto"

    def __init__(self, rate: float, alpha: float = 1.5) -> None:
        if rate <= 0.0:
            raise ValueError("rate must be positive, got %r" % (rate,))
        if alpha <= 1.0:
            raise ValueError(
                "alpha must be > 1 so the mean gap exists, got %r" % (alpha,)
            )
        self.rate = rate
        self.alpha = alpha
        self._scale = (alpha - 1.0) / (alpha * rate)

    def gap(self, rng: random.Random) -> float:
        return self._scale * rng.paretovariate(self.alpha)


def make_arrivals(process: str, rate: float, alpha: float = 1.5):
    """Build the named arrival process at *rate* (``poisson`` | ``pareto``)."""
    if process == "poisson":
        return PoissonArrivals(rate)
    if process == "pareto":
        return ParetoArrivals(rate, alpha=alpha)
    raise ValueError(
        "unknown arrival process %r (known: poisson, pareto)" % (process,)
    )


class ZipfSampler:
    """Zipf-ranked sampling over ``{0, ..., n-1}`` in O(1) time and memory.

    Rank probabilities follow ``P(rank k) ∝ (k+1)^-s``.  Sampling inverts
    the continuous approximation of the generalized harmonic CDF,
    ``H(x) = (x^(1-s) - 1) / (1 - s)`` (``ln x`` at ``s = 1``), which
    matches the discrete Zipf distribution to within a rank at every
    quantile — skew fidelity far beyond what a load model needs, with no
    per-rank table to hold for 10^6-agent populations.
    """

    __slots__ = ("n", "s", "_h_n")

    def __init__(self, n: int, s: float = 1.1) -> None:
        if n < 1:
            raise ValueError("population must be >= 1, got %r" % (n,))
        if s < 0.0:
            raise ValueError("skew must be >= 0, got %r" % (s,))
        self.n = n
        self.s = s
        # Total continuous mass over [1, n+1): rank k (1-based) owns the
        # slab [k, k+1), so every rank gets its full probability share.
        if s == 1.0:
            self._h_n = math.log(n + 1.0)
        else:
            self._h_n = ((n + 1.0) ** (1.0 - s) - 1.0) / (1.0 - s)

    def sample(self, rng: random.Random) -> int:
        """Draw one rank in ``[0, n)``; rank 0 is the most popular."""
        u = rng.random() * self._h_n
        if self.s == 1.0:
            x = math.exp(u)
        else:
            x = (u * (1.0 - self.s) + 1.0) ** (1.0 / (1.0 - self.s))
        rank = int(x) - 1
        if rank >= self.n:  # guard the u -> H(n+1) boundary
            rank = self.n - 1
        elif rank < 0:
            rank = 0
        return rank

    def __repr__(self) -> str:
        return "ZipfSampler(n=%d, s=%g)" % (self.n, self.s)
