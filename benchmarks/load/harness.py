"""Open-loop load harness: many simulated agents, constant-memory telemetry.

The harness drives a multi-node guardian topology with **open-loop**
traffic: arrivals are drawn from a traffic model (Poisson or heavy-tailed
Pareto gaps, Zipf-skewed agent activity and key popularity — see
:mod:`benchmarks.load.arrivals`) regardless of how many requests are
still outstanding.  That is the regime where tail latency and
flow-control collapse are visible; a closed loop self-throttles and hides
both.

Three design rules keep 10^5–10^6 simulated agents affordable:

* **Agents are data, not processes.**  The agent population is one shared
  ``bytearray`` of connection bits plus O(1) Zipf samplers; a handful of
  driver processes (one per client guardian) issue on the whole
  population's behalf.  Connection churn flips bits and charges a
  reconnect penalty to the next request from a disconnected agent.
* **Pending requests cost no process.**  Requests are issued with
  ``handle.stream(...)`` and completed with the promise's
  ``on_resolved`` vat continuation — one queue entry per pending call,
  never a blocked process (the PR 6 continuation layer).
* **Telemetry is streaming.**  Latency goes into
  :class:`~repro.obs.hist.StreamingHistogram` buckets via a
  :class:`~repro.obs.metrics.Metrics` registry in streaming mode, and a
  :class:`~repro.obs.timeseries.WindowedCollector` keeps the per-window
  timeline (throughput, tails, occupancy).  No raw sample is retained
  anywhere on the load path.

:func:`run_load` runs one (workload, offered rate) step in a fresh
:class:`~repro.entities.system.ArgusSystem`; :func:`stepped_search` walks
a rate ladder until the system stops sustaining the offered rate (the
flow-control window collapses and achieved throughput falls away), which
is how ``max_sustainable_throughput`` in ``BENCH_PR8.json`` is found.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Optional, Tuple

from benchmarks.load.arrivals import ZipfSampler, make_arrivals
from repro.core.exceptions import ArgusError
from repro.entities.system import ArgusSystem
from repro.obs.metrics import Metrics
from repro.obs.timeseries import WindowedCollector
from repro.streams.config import StreamConfig
from repro.types.signatures import INT, HandlerType

__all__ = [
    "LoadConfig",
    "LOAD_WORKLOADS",
    "load_stream_config",
    "run_load",
    "stepped_search",
]


@dataclass
class LoadConfig:
    """One load step: a workload, a topology, a traffic model, a rate."""

    workload: str = "echo"
    #: Simulated client agents (connection bits + Zipf activity ranks).
    n_agents: int = 100_000
    #: Client guardians; each runs one open-loop driver process.
    n_clients: int = 4
    #: Server guardians (echo servers / pipeline mids / kv shards).
    n_servers: int = 2
    #: Key population for the kv workload.
    n_keys: int = 10_000
    #: Aggregate offered rate, requests per simulated second.
    rate: float = 500.0
    #: Issuing phase length (simulated seconds); drain follows.
    duration: float = 4.0
    #: Telemetry window width for the WindowedCollector.
    window: float = 0.5
    arrival_process: str = "poisson"
    pareto_alpha: float = 1.5
    #: Zipf skew of agent activity (which agent issues the next request).
    agent_skew: float = 1.05
    #: Zipf skew of key popularity (kv workload).
    key_skew: float = 1.1
    kv_read_fraction: float = 0.25
    #: Expected fraction of the *active* population disconnected per
    #: simulated second (churn events arrive Poisson at this rate times
    #: the per-client agent share).
    churn_rate: float = 0.02
    #: Extra delay charged to a request that finds its agent disconnected.
    reconnect_penalty: float = 0.005
    #: Per-request server compute time.
    server_compute: float = 0.001
    seed: int = 0
    #: How long past the issuing phase to wait for in-flight requests.
    drain_timeout: float = 20.0
    #: Completed/issued ratio (at the issuing-phase cutoff) a step must
    #: reach to count as sustained.  Issues are arrival-driven (open
    #: loop), so this measures whether service kept up with the actual
    #: draw of arrivals, immune to Poisson variance in the draw itself.
    sustained_fraction: float = 0.9
    #: Optional latency ceilings (keys p50/p99/p999/max) a step must also
    #: meet to count as sustained.  The CLI passes the workload's SLO
    #: ceilings here, making ``max_sustainable_throughput`` "the highest
    #: offered rate still inside SLO" — queueing blow-up past saturation
    #: fails the guard even before achieved throughput falls away.
    latency_guard: Optional[Dict[str, float]] = None
    relative_error: float = 0.01
    #: Ring cap for the window timeline (None keeps every window).
    max_windows: Optional[int] = None
    # Network model (sim time unit = seconds).
    latency: float = 0.002
    jitter: float = 0.0005
    kernel_overhead: float = 0.0005
    bandwidth: float = 300_000.0


def load_stream_config(config: LoadConfig) -> StreamConfig:
    """Adaptive transport tuned to the harness's seconds-scale network.

    Small buffer delays keep batching from dominating latency at low
    rates while AIMD still grows batches under pressure;
    ``max_inflight_calls`` is the flow-control window whose collapse the
    stepped-rate search is probing for.
    """
    return StreamConfig(
        batch_size=8,
        reply_batch_size=8,
        max_buffer_delay=0.005,
        reply_max_delay=0.005,
        rto=0.25,
        max_retries=4,
        ack_delay=0.05,
        reply_ack_delay=0.1,
        auto_restart=True,
        max_batch_size=64,
        min_rto=0.05,
        max_rto=2.0,
        max_inflight_calls=256,
    )


# ----------------------------------------------------------------------
# Workload topologies
# ----------------------------------------------------------------------

_ECHO = HandlerType(args=[INT], returns=[INT])
_RECORD = HandlerType(args=[INT], returns=[INT])
_DOUBLE = HandlerType(args=[INT], returns=[INT])
_KV_ADD = HandlerType(args=[INT, INT], returns=[INT])
_KV_GET = HandlerType(args=[INT], returns=[INT])


class LoadWorkload:
    """A buildable topology plus a per-request issue rule."""

    name = "workload"

    def prepare(self, config: LoadConfig) -> None:
        """Per-run setup (samplers); called once before the system runs."""

    def build(self, system: ArgusSystem, config: LoadConfig) -> None:
        raise NotImplementedError

    def bind(self, ctx: Any, config: LoadConfig) -> Any:
        """Bind this driver's handler refs; the result feeds :meth:`issue`."""
        raise NotImplementedError

    def issue(self, handles: Any, agent: int, rng: Any, config: LoadConfig):
        """Issue one request; returns the promise (may raise ArgusError)."""
        raise NotImplementedError


class EchoLoad(LoadWorkload):
    """``n_servers`` independent echo servers; agent id routes the call."""

    name = "echo"

    def build(self, system: ArgusSystem, config: LoadConfig) -> None:
        compute = config.server_compute

        def echo(ctx, x):
            yield ctx.compute(compute)
            return x

        for i in range(config.n_servers):
            system.create_guardian("server%d" % i).create_handler(
                "echo", _ECHO, echo
            )

    def bind(self, ctx, config):
        return [
            ctx.lookup("server%d" % i, "echo") for i in range(config.n_servers)
        ]

    def issue(self, handles, agent, rng, config):
        return handles[agent % len(handles)].stream(agent)


class PipelineLoad(LoadWorkload):
    """Two-level: client -> mid -> db, one nested RPC per request."""

    name = "pipeline"

    def build(self, system: ArgusSystem, config: LoadConfig) -> None:
        compute = config.server_compute
        db = system.create_guardian("db")

        def double(ctx, x):
            yield ctx.compute(compute)
            return 2 * x

        db.create_handler("double", _DOUBLE, double)

        def record(ctx, x):
            doubled = yield ctx.lookup("db", "double").call(x)
            return doubled + 1

        for i in range(config.n_servers):
            system.create_guardian("mid%d" % i).create_handler(
                "record", _RECORD, record
            )

    def bind(self, ctx, config):
        return [
            ctx.lookup("mid%d" % i, "record") for i in range(config.n_servers)
        ]

    def issue(self, handles, agent, rng, config):
        return handles[agent % len(handles)].stream(agent)


class KvLoad(LoadWorkload):
    """Sharded KV with a Zipf-hot key space and an add/get mix.

    Key -> shard by modulo, so the hottest keys concentrate load on their
    shards the way real skew does.  ``get`` of a missing key returns 0
    (no signal) to keep the error channel for transport conditions only.
    """

    name = "kv"

    def __init__(self) -> None:
        self._keys: Optional[ZipfSampler] = None

    def prepare(self, config: LoadConfig) -> None:
        self._keys = ZipfSampler(config.n_keys, config.key_skew)

    def build(self, system: ArgusSystem, config: LoadConfig) -> None:
        compute = config.server_compute

        def add(ctx, key, delta):
            yield ctx.compute(compute)
            data = ctx.guardian.state["data"]
            value = data.get(key, 0) + delta
            data[key] = value
            return value

        def get(ctx, key):
            yield ctx.compute(compute)
            return ctx.guardian.state["data"].get(key, 0)

        for i in range(config.n_servers):
            shard = system.create_guardian("shard%d" % i)
            shard.state["data"] = {}
            shard.create_handler("add", _KV_ADD, add)
            shard.create_handler("get", _KV_GET, get)

    def bind(self, ctx, config):
        return [
            (
                ctx.lookup("shard%d" % i, "add"),
                ctx.lookup("shard%d" % i, "get"),
            )
            for i in range(config.n_servers)
        ]

    def issue(self, handles, agent, rng, config):
        key = self._keys.sample(rng)
        add, get = handles[key % len(handles)]
        if rng.random() < config.kv_read_fraction:
            return get.stream(key)
        return add.stream(key, 1)


LOAD_WORKLOADS: Dict[str, Callable[[], LoadWorkload]] = {
    "echo": EchoLoad,
    "pipeline": PipelineLoad,
    "kv": KvLoad,
}


# ----------------------------------------------------------------------
# The open-loop driver
# ----------------------------------------------------------------------
def _make_driver(
    client_index: int,
    workload: LoadWorkload,
    config: LoadConfig,
    system: ArgusSystem,
    metrics: Metrics,
    connected: bytearray,
    state: Dict[str, Any],
):
    """One client guardian's open-loop issue process.

    The driver sleeps traffic-model gaps and fires ``stream`` calls; each
    completion is a vat continuation, so outstanding requests hold no
    process.  A request whose (Zipf-sampled) agent is disconnected pays
    ``reconnect_penalty`` first: the issue is deferred with a plain
    scheduler callback, and the recorded latency covers the penalty —
    still no process.
    """
    env = system.env
    arrivals = make_arrivals(
        config.arrival_process,
        config.rate / config.n_clients,
        alpha=config.pareto_alpha,
    )
    arrival_rng = system.rng.stream("load.arrivals.%d" % client_index)
    agent_rng = system.rng.stream("load.agents.%d" % client_index)
    op_rng = system.rng.stream("load.ops.%d" % client_index)
    agents = state["agent_sampler"]
    end = config.duration

    def finish(outcome, t0):
        state["inflight"] -= 1
        metrics.observe("load.latency", env.now - t0)
        if outcome.is_normal:
            metrics.inc("load.completed")
        else:
            metrics.inc("load.errors", condition=outcome.condition)

    def issue_now(agent, t0):
        try:
            promise = workload.issue(state["handles"], agent, op_rng, config)
        except ArgusError as exc:
            metrics.inc("load.errors", condition=exc.condition)
            return
        metrics.inc("load.issued")
        state["inflight"] += 1
        if state["inflight"] > state["inflight_peak"]:
            state["inflight_peak"] = state["inflight"]
        promise.on_resolved(lambda outcome, t0=t0: finish(outcome, t0))

    def driver(ctx):
        state["handles"] = workload.bind(ctx, config)
        while True:
            gap = arrivals.gap(arrival_rng)
            if ctx.now + gap >= end:
                break
            yield ctx.sleep(gap)
            agent = agents.sample(agent_rng)
            if connected[agent]:
                issue_now(agent, ctx.now)
            else:
                # Reconnect: flip the bit now, charge the penalty to this
                # request's latency, and issue from a scheduler callback.
                connected[agent] = 1
                metrics.inc("load.reconnects")
                env.call_in(config.reconnect_penalty, issue_now, agent, ctx.now)
        return None

    return driver


def _make_churn(
    client_index: int,
    config: LoadConfig,
    system: ArgusSystem,
    metrics: Metrics,
    connected: bytearray,
):
    """Poisson connection churn over this client's share of the agents."""
    events_per_sec = config.churn_rate * (config.n_agents / config.n_clients)
    churn_rng = system.rng.stream("load.churn.%d" % client_index)
    end = config.duration

    def churn(ctx):
        if events_per_sec <= 0.0:
            return None
        while True:
            gap = churn_rng.expovariate(events_per_sec)
            if ctx.now + gap >= end:
                break
            yield ctx.sleep(gap)
            agent = churn_rng.randrange(config.n_agents)
            if connected[agent]:
                connected[agent] = 0
                metrics.inc("load.churn")
        return None

    return churn


def run_load(config: LoadConfig) -> Dict[str, Any]:
    """Run one load step in a fresh world; returns the step's summary.

    The summary is JSON-ready: counters, achieved rate, streaming latency
    quantiles, the per-window timeline rows, and the encoded latency
    histogram (so any quantile can be re-queried offline).
    """
    try:
        workload = LOAD_WORKLOADS[config.workload]()
    except KeyError:
        raise ValueError(
            "unknown load workload %r (known: %s)"
            % (config.workload, ", ".join(sorted(LOAD_WORKLOADS)))
        ) from None
    workload.prepare(config)

    system = ArgusSystem(
        latency=config.latency,
        bandwidth=config.bandwidth,
        kernel_overhead=config.kernel_overhead,
        jitter=config.jitter,
        seed=config.seed,
        stream_config=load_stream_config(config),
    )
    env = system.env
    collector = WindowedCollector(
        window=config.window,
        clock=lambda: env.now,
        relative_error=config.relative_error,
        max_windows=config.max_windows,
    )
    metrics = Metrics(
        streaming=True,
        relative_error=config.relative_error,
        collector=collector,
    )
    workload.build(system, config)

    connected = bytearray(b"\x01") * config.n_agents
    horizon = config.duration + config.drain_timeout
    states: List[Dict[str, Any]] = []
    for index in range(config.n_clients):
        client = system.create_guardian("client%d" % index)
        state: Dict[str, Any] = {
            "inflight": 0,
            "inflight_peak": 0,
            "agent_sampler": ZipfSampler(config.n_agents, config.agent_skew),
            "handles": None,
        }
        states.append(state)
        client.spawn(
            _make_driver(index, workload, config, system, metrics, connected, state),
            label="load-driver-%d" % index,
        )
        client.spawn(
            _make_churn(index, config, system, metrics, connected),
            label="load-churn-%d" % index,
        )

    def occupancy_tick():
        collector.gauge("load.inflight", sum(s["inflight"] for s in states))
        if env.now < horizon:
            env.call_in(config.window, occupancy_tick)

    env.call_in(config.window / 2.0, occupancy_tick)

    # Issuing phase.
    system.run(until=config.duration)
    issued = metrics.total("load.issued")
    completed_at_cutoff = metrics.total("load.completed")
    errors_at_cutoff = metrics.total("load.errors")
    achieved_rate = (
        (completed_at_cutoff + errors_at_cutoff) / config.duration
        if config.duration > 0
        else 0.0
    )

    # Drain: give the backlog a bounded grace period to finish.
    while (
        sum(s["inflight"] for s in states) > 0 and system.now < horizon
    ):
        system.run(until=min(system.now + 0.5, horizon))
    drained = sum(s["inflight"] for s in states) == 0

    histogram = metrics.merged_histogram("load.latency")
    snapshot = histogram.snapshot()
    offered = config.rate
    guard_ok = True
    if config.latency_guard:
        for key, ceiling in config.latency_guard.items():
            actual = snapshot.get(key)
            if actual is None or actual > ceiling:
                guard_ok = False
    served_at_cutoff = completed_at_cutoff + errors_at_cutoff
    sustained = (
        issued > 0
        and served_at_cutoff >= config.sustained_fraction * issued
        and drained
        and guard_ok
    )
    return {
        "workload": config.workload,
        "agents": config.n_agents,
        "offered_rate": offered,
        "duration": config.duration,
        "issued": issued,
        "completed": metrics.total("load.completed"),
        "errors": metrics.total("load.errors"),
        "reconnects": metrics.total("load.reconnects"),
        "churn": metrics.total("load.churn"),
        "achieved_rate": achieved_rate,
        "sustained": sustained,
        "latency_guard_ok": guard_ok,
        "drained": drained,
        "inflight_peak": max(s["inflight_peak"] for s in states),
        "inflight_end": sum(s["inflight"] for s in states),
        "latency": {
            "count": snapshot["count"],
            "mean": snapshot["mean"],
            "p50": snapshot["p50"],
            "p99": snapshot["p99"],
            "p999": snapshot["p999"],
            "max": snapshot["max"],
        },
        "latency_hist": histogram.to_dict(),
        "windows": collector.rows(),
        "dropped_windows": collector.dropped_windows,
        "final_time": system.now,
        "net": system.stats(),
    }


def _step_summary(result: Dict[str, Any]) -> Dict[str, Any]:
    """The compact per-step row kept in the report's rate ladder."""
    latency = result["latency"]
    return {
        "offered_rate": result["offered_rate"],
        "achieved_rate": result["achieved_rate"],
        "issued": result["issued"],
        "completed": result["completed"],
        "errors": result["errors"],
        "sustained": result["sustained"],
        "latency_guard_ok": result["latency_guard_ok"],
        "drained": result["drained"],
        "inflight_peak": result["inflight_peak"],
        "p50": latency["p50"],
        "p99": latency["p99"],
        "p999": latency["p999"],
    }


def stepped_search(
    config: LoadConfig, rates: List[float]
) -> Tuple[Dict[str, Any], List[Dict[str, Any]]]:
    """Walk the rate ladder until the first unsustained step.

    Returns ``(workload_entry, steps)``: the report entry summarizes the
    **reference step** — the highest sustained rate (or the first step if
    none sustained, so a broken system still reports something to look
    at) — and carries the full ladder.  ``max_sustainable_throughput`` is
    the reference step's achieved rate, ``None`` if nothing sustained.
    """
    if not rates:
        raise ValueError("rate ladder must not be empty")
    steps: List[Dict[str, Any]] = []
    reference: Optional[Dict[str, Any]] = None
    first: Optional[Dict[str, Any]] = None
    for rate in rates:
        result = run_load(replace(config, rate=rate))
        if first is None:
            first = result
        steps.append(_step_summary(result))
        if result["sustained"]:
            reference = result
        else:
            break
    collapsed = not steps[-1]["sustained"] if steps else False
    shown = reference if reference is not None else first
    entry = {
        "agents": config.n_agents,
        "offered_rate": shown["offered_rate"],
        "requests": shown["issued"],
        "errors": shown["errors"],
        "reconnects": shown["reconnects"],
        "churn": shown["churn"],
        "latency": shown["latency"],
        "latency_hist": shown["latency_hist"],
        "windows": shown["windows"],
        "max_sustainable_throughput": (
            reference["achieved_rate"] if reference is not None else None
        ),
        "ladder_exhausted": not collapsed,
        "steps": steps,
    }
    return entry, steps
