"""E11 — promise-based binary tree: parallel insertion and search (§3.2).

Paper claim: "promises can be used for parallel insertion and searching of
elements in a binary tree in which the nodes of the tree are promises.  If
a search reaches a node that cannot be claimed yet, it waits until the
promise is ready."

Reproduced series: completion time of k searchers overlapped with the
inserter (promise tree: searches proceed as the frontier materializes) vs
the sequential alternative (search only after all insertions), sweeping
tree size.
"""

from repro.concurrency import PromiseTree
from repro.entities import ArgusSystem

from .conftest import report

INSERT_COST = 0.1


def shuffled_keys(n, seed=7):
    import random

    keys = list(range(n))
    random.Random(seed).shuffle(keys)
    return keys


def search_targets(keys, n_searchers):
    """Keys spread evenly through the insertion order (25%, 50%, ...)."""
    step = len(keys) // n_searchers
    return [keys[(index + 1) * step - 1] for index in range(n_searchers)]


def run_promise_tree(n_keys, n_searchers):
    """Searches run concurrently with the inserter; each completes as
    soon as its key is inserted."""
    system = ArgusSystem()
    tree = PromiseTree(system.env)
    keys = shuffled_keys(n_keys)
    targets = search_targets(keys, n_searchers)
    client = system.create_guardian("client")
    completion_times = []

    def inserter(ctx):
        for key in keys:
            yield ctx.sleep(INSERT_COST)
            tree.insert(key, "value%d" % key)

    def searcher(ctx, key):
        value = yield from tree.search(key)
        completion_times.append(ctx.now)
        return value

    client.spawn(inserter)
    processes = [client.spawn(searcher, key) for key in targets]
    system.run(until=system.env.all_of(processes))
    assert all(p.value == "value%d" % key for p, key in zip(processes, targets))
    return sum(completion_times) / len(completion_times), max(completion_times)


def run_sequential(n_keys, n_searchers):
    """Baseline: build the whole tree, then search — every search
    completes only after the full build."""
    system = ArgusSystem()
    tree = PromiseTree(system.env)
    keys = shuffled_keys(n_keys)
    targets = search_targets(keys, n_searchers)
    client = system.create_guardian("client")
    completion_times = []

    def all_work(ctx):
        for key in keys:
            yield ctx.sleep(INSERT_COST)
            tree.insert(key, "value%d" % key)
        found = []
        for key in targets:
            node = tree.try_search(key)
            completion_times.append(ctx.now)
            found.append(node.value)
        return found

    process = client.spawn(all_work)
    found = system.run(until=process)
    assert found == ["value%d" % key for key in targets]
    return sum(completion_times) / len(completion_times), max(completion_times)


def test_e11_promise_tree(benchmark):
    rows = []
    for n_keys in (32, 128, 512):
        seq_mean, seq_max = run_sequential(n_keys, n_searchers=4)
        ovl_mean, ovl_max = run_promise_tree(n_keys, n_searchers=4)
        rows.append((n_keys, seq_mean, ovl_mean, seq_mean / ovl_mean, seq_max, ovl_max))
    report(
        "E11",
        "promise tree: mean search completion, overlapped vs build-then-search",
        ["keys", "seq_mean", "overlap_mean", "speedup", "seq_max", "overlap_max"],
        rows,
    )
    for row in rows:
        # Searches complete as their keys appear: mean completion is much
        # earlier than waiting for the full build (~1.6x for evenly
        # spread targets), and never later.
        assert row[3] > 1.3
        assert row[5] <= row[4] + 1e-9

    benchmark(run_promise_tree, 128, 4)
